package cluster

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/head"
	"repro/internal/jobs"
	"repro/internal/objstore"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// sumReducer sums little-endian uint32 units.
type sumReducer struct{}

type sumObj struct{ total uint64 }

func (sumReducer) NewObject() core.Object { return &sumObj{} }
func (sumReducer) LocalReduce(obj core.Object, unit []byte) error {
	obj.(*sumObj).total += uint64(binary.LittleEndian.Uint32(unit))
	return nil
}
func (sumReducer) GlobalReduce(dst, src core.Object) error {
	dst.(*sumObj).total += src.(*sumObj).total
	return nil
}
func (sumReducer) Encode(obj core.Object) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(nil, obj.(*sumObj).total), nil
}
func (sumReducer) Decode(data []byte) (core.Object, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("want 8 bytes, got %d", len(data))
	}
	return &sumObj{total: binary.LittleEndian.Uint64(data)}, nil
}

func init() {
	core.Register("cluster-test-sum", func([]byte) (core.Reducer, error) { return sumReducer{}, nil })
}

// buildDataset creates an index plus in-memory data whose units are
// uint32(i % 1009), and returns the expected sum.
func buildDataset(t *testing.T, units int64, fileUnits, chunkUnits int) (*chunk.Index, *chunk.MemSource, uint64) {
	t.Helper()
	ix, err := chunk.Layout("sum", units, 4, fileUnits, chunkUnits)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	var want uint64
	var unit int64
	for _, f := range ix.Files {
		buf := make([]byte, f.Size)
		for i := 0; i < int(f.Size/4); i++ {
			v := uint32(unit % 1009)
			binary.LittleEndian.PutUint32(buf[4*i:], v)
			want += uint64(v)
			unit++
		}
		if err := src.WriteFile(f.Name, buf); err != nil {
			t.Fatal(err)
		}
	}
	return ix, src, want
}

func newHead(t *testing.T, ix *chunk.Index, placement jobs.Placement, clusters int) *head.Head {
	return newHeadTuned(t, ix, placement, clusters, config.Tuning{})
}

func newHeadTuned(t *testing.T, ix *chunk.Index, placement jobs.Placement, clusters int, tn config.Tuning) *head.Head {
	t.Helper()
	pool, err := jobs.NewPool(ix, placement, jobs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := protocol.JobSpec{App: "cluster-test-sum", UnitSize: 4, GroupBytes: 1 << 10}
	if err := head.EncodeIndexSpec(&spec, ix); err != nil {
		t.Fatal(err)
	}
	h, err := head.New(head.Config{
		Pool:           pool,
		Reducer:        sumReducer{},
		Spec:           spec,
		ExpectClusters: clusters,
		Tuning:         tn,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSingleClusterInProc(t *testing.T) {
	ix, src, want := buildDataset(t, 4000, 1000, 100)
	h := newHead(t, ix, jobs.SplitByFraction(len(ix.Files), 1, 0, 1), 1)
	rep, err := Run(Config{
		Site:    0,
		Name:    "local",
		Cores:   4,
		Sources: map[int]chunk.Source{0: src},
		Head:    InProc{Head: h},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	obj, reports, _, err := h.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if got := obj.(*sumObj).total; got != want {
		t.Errorf("final sum = %d, want %d", got, want)
	}
	final, err := sumReducer{}.Decode(rep.Final)
	if err != nil || final.(*sumObj).total != want {
		t.Errorf("cluster's copy of final = %v, %v", final, err)
	}
	if len(reports) != 1 || reports[0].Jobs.Total() != ix.NumChunks() {
		t.Errorf("reports = %+v", reports)
	}
	if rep.Jobs.Stolen != 0 {
		t.Errorf("single local cluster stole %d jobs", rep.Jobs.Stolen)
	}
}

func TestHybridTwoClustersInProc(t *testing.T) {
	ix, src, want := buildDataset(t, 8000, 1000, 100) // 8 files × 10 chunks
	// 25% of files at site 0, 75% at site 1: site 0 must steal.
	placement := jobs.SplitByFraction(len(ix.Files), 0.25, 0, 1)
	h := newHead(t, ix, placement, 2)

	sources := map[int]chunk.Source{0: src, 1: src} // same backing data
	var wg sync.WaitGroup
	reports := make([]*Report, 2)
	errs := make([]error, 2)
	for i, cfg := range []Config{
		{Site: 0, Name: "local", Cores: 2, Sources: sources, Head: InProc{Head: h}},
		{Site: 1, Name: "cloud", Cores: 2, Sources: sources, Head: InProc{Head: h}},
	} {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			reports[i], errs[i] = Run(cfg)
		}(i, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cluster %d: %v", i, err)
		}
	}
	obj, hreports, _, err := h.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if got := obj.(*sumObj).total; got != want {
		t.Errorf("final sum = %d, want %d", got, want)
	}
	total := 0
	for _, r := range hreports {
		total += r.Jobs.Total()
	}
	if total != ix.NumChunks() {
		t.Errorf("clusters processed %d jobs, dataset has %d", total, ix.NumChunks())
	}
	// With a 25/75 split and symmetric compute, at least one side works on
	// remote data.
	if reports[0].Jobs.Stolen+reports[1].Jobs.Stolen == 0 {
		t.Error("no stealing despite skewed placement")
	}
}

func TestHybridOverSockets(t *testing.T) {
	ix, src, want := buildDataset(t, 6000, 1000, 100)
	placement := jobs.SplitByFraction(len(ix.Files), 0.5, 0, 1)
	h := newHead(t, ix, placement, 2)

	// Head over TCP.
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(hl)
	defer h.Close()

	// Site 1's data behind an object-store server, as in a real deployment.
	backend := objstore.NewMemBackend()
	store := objstore.NewServer(backend)
	store.Logf = t.Logf
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go store.Serve(sl)
	defer store.Close()
	osc := objstore.Dial("tcp", sl.Addr().String(), 8)
	defer osc.Close()
	if err := objstore.Upload(osc, ix, src, ""); err != nil {
		t.Fatal(err)
	}

	runCluster := func(site int, name string) (*Report, error) {
		hc, err := DialHead("tcp", hl.Addr().String())
		if err != nil {
			return nil, err
		}
		defer hc.Close()
		return Run(Config{
			Site:             site,
			Name:             name,
			Cores:            2,
			RetrievalThreads: 3,
			Head:             hc,
			SourceBuilder: func(ix *chunk.Index) (map[int]chunk.Source, error) {
				return map[int]chunk.Source{
					0: src, // cluster-local storage node
					1: &objstore.Source{Client: osc, Index: ix, Threads: 2},
				}, nil
			},
			SourceLabels: map[int]string{0: "local", 1: "s3"},
		})
	}

	var wg sync.WaitGroup
	reports := make([]*Report, 2)
	errs := make([]error, 2)
	for i, site := range []int{0, 1} {
		wg.Add(1)
		go func(i, site int) {
			defer wg.Done()
			reports[i], errs[i] = runCluster(site, fmt.Sprintf("c%d", site))
		}(i, site)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cluster %d: %v", i, err)
		}
	}
	obj, _, _, err := h.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if got := obj.(*sumObj).total; got != want {
		t.Errorf("final sum = %d, want %d", got, want)
	}
	// Byte accounting: both clusters together must have read the dataset
	// exactly once.
	var bytes int64
	for _, r := range reports {
		for _, n := range r.Bytes {
			bytes += n
		}
	}
	if bytes != ix.TotalBytes() {
		t.Errorf("clusters retrieved %d bytes, dataset is %d", bytes, ix.TotalBytes())
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Cores: 1}); err == nil {
		t.Error("missing head accepted")
	}
	ix, src, _ := buildDataset(t, 100, 100, 10)
	h := newHead(t, ix, jobs.SplitByFraction(1, 1, 0, 1), 1)
	if _, err := Run(Config{Cores: 1, Head: InProc{Head: h}}); err == nil {
		t.Error("missing sources accepted")
	}
	_ = src
}

func TestHeadRejectsExtraClusters(t *testing.T) {
	ix, _, _ := buildDataset(t, 100, 100, 10)
	h := newHead(t, ix, jobs.SplitByFraction(1, 1, 0, 1), 1)
	if _, err := h.Register(protocol.Hello{Site: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register(protocol.Hello{Site: 1}); err == nil {
		t.Error("over-registration accepted")
	}
}

func TestUnknownReducerInSpec(t *testing.T) {
	ix, src, _ := buildDataset(t, 100, 100, 10)
	pool, err := jobs.NewPool(ix, jobs.SplitByFraction(1, 1, 0, 1), jobs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := protocol.JobSpec{App: "no-such-app", UnitSize: 4}
	if err := head.EncodeIndexSpec(&spec, ix); err != nil {
		t.Fatal(err)
	}
	h, err := head.New(head.Config{Pool: pool, Reducer: sumReducer{}, Spec: spec, ExpectClusters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{
		Site: 0, Name: "x", Cores: 1,
		Sources: map[int]chunk.Source{0: src},
		Head:    InProc{Head: h},
	}); err == nil {
		t.Error("unknown reducer accepted")
	}
}

// TestHybridOverSocketsCodecs runs the two-cluster hybrid deployment under
// the supported wire-codec combinations: both masters on the default binary
// codec against a default head; both pinned to gob against a head that
// opted in with -wire-codec=gob; and mixed — a binary-advertising master on
// the gob-pinned head, which must be accepted but held on gob (an opted-in
// head never upgrades anyone). The final sum must be identical in all
// three.
func TestHybridOverSocketsCodecs(t *testing.T) {
	gobHead := config.Tuning{WireCodec: config.CodecGob}
	cases := []struct {
		name   string
		useGob [2]bool
		tuning config.Tuning
	}{
		{"both-binary", [2]bool{false, false}, config.Tuning{}},
		{"both-gob", [2]bool{true, true}, gobHead},
		{"mixed", [2]bool{true, false}, gobHead},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix, src, want := buildDataset(t, 6000, 1000, 100)
			placement := jobs.SplitByFraction(len(ix.Files), 0.5, 0, 1)
			h := newHeadTuned(t, ix, placement, 2, tc.tuning)

			hl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go h.Serve(hl)
			defer h.Close()

			backend := objstore.NewMemBackend()
			store := objstore.NewServer(backend)
			sl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go store.Serve(sl)
			defer store.Close()
			up := objstore.Dial("tcp", sl.Addr().String(), 4)
			if err := objstore.Upload(up, ix, src, ""); err != nil {
				t.Fatal(err)
			}
			up.Close()

			runCluster := func(site int, useGob bool) (*Report, error) {
				hc, err := DialHead("tcp", hl.Addr().String())
				if err != nil {
					return nil, err
				}
				hc.UseGob = useGob
				defer hc.Close()
				codec := transport.CodecBinary
				if useGob {
					codec = transport.CodecGob
				}
				osc := objstore.DialCodec("tcp", sl.Addr().String(), 4, codec)
				defer osc.Close()
				return Run(Config{
					Site:             site,
					Name:             fmt.Sprintf("c%d", site),
					Cores:            2,
					RetrievalThreads: 2,
					Head:             hc,
					SourceBuilder: func(ix *chunk.Index) (map[int]chunk.Source, error) {
						return map[int]chunk.Source{
							0: src,
							1: &objstore.Source{Client: osc, Index: ix, Threads: 2},
						}, nil
					},
					SourceLabels: map[int]string{0: "local", 1: "s3"},
				})
			}

			var wg sync.WaitGroup
			errs := make([]error, 2)
			for i, site := range []int{0, 1} {
				wg.Add(1)
				go func(i, site int) {
					defer wg.Done()
					_, errs[i] = runCluster(site, tc.useGob[i])
				}(i, site)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("cluster %d: %v", i, err)
				}
			}
			obj, _, _, err := h.Result()
			if err != nil {
				t.Fatalf("Result: %v", err)
			}
			if got := obj.(*sumObj).total; got != want {
				t.Errorf("final sum = %d, want %d", got, want)
			}
		})
	}
}
