package cluster

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/head"
	"repro/internal/jobs"
	"repro/internal/protocol"
)

// multiHead builds a long-lived multi-query head with fault machinery on.
func multiTestHead(t *testing.T, clusters int, tn config.Tuning, store fault.Store) *head.Head {
	t.Helper()
	h, err := head.New(head.Config{
		Reducer:        sumReducer{},
		ExpectClusters: clusters,
		Logf:           t.Logf,
		Tuning:         tn,
		Fault:          head.FaultConfig{Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// admitSum admits one sum query whose pool places every file at site.
func admitSum(t *testing.T, h *head.Head, ix *chunk.Index, site int) *head.Query {
	t.Helper()
	placement := make(jobs.Placement, len(ix.Files))
	for i := range placement {
		placement[i] = site
	}
	pool, err := jobs.NewPool(ix, placement, jobs.Options{DisableStealing: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := protocol.JobSpec{App: "cluster-test-sum", UnitSize: 4, GroupBytes: 1 << 10}
	if err := head.EncodeIndexSpec(&spec, ix); err != nil {
		t.Fatal(err)
	}
	q, err := h.Admit(head.QueryConfig{Pool: pool, Reducer: sumReducer{}, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestAgentCrashRecoversOneQueryOnly is the resilience acceptance drill:
// two queries run concurrently over a shared two-site session, each confined
// to one site by placement. The site serving query A is killed mid-run; a
// replacement agent re-registers and query A recovers and completes, while
// query B — served by the surviving site — finishes undisturbed.
func TestAgentCrashRecoversOneQueryOnly(t *testing.T) {
	ix, src, want := buildDataset(t, 8000, 1000, 100) // 8 files × 10 chunks
	// Lease expiry never fires on its own; the test fails the site explicitly.
	h := multiTestHead(t, 2, config.Tuning{LeaseTTL: time.Hour}, fault.NewMemStore())

	qa := admitSum(t, h, ix, 0) // query A: all jobs at site 0
	qb := admitSum(t, h, ix, 1) // query B: all jobs at site 1

	// Site 0's first incarnation dies after 12 chunk reads.
	inj := &fault.Injector{Source: src, KillAfter: 12}
	doomedCfg := AgentConfig{
		Site: 0, Name: "doomed", Cores: 2,
		Sources: map[int]chunk.Source{0: inj},
		Head:    InProcAgent{Head: h},
		Retry:   Retry{Attempts: 2, Backoff: time.Millisecond},
		Logf:    t.Logf,
	}
	healthyCtx, healthyCancel := context.WithCancel(context.Background())
	defer healthyCancel()
	healthyDone := make(chan error, 1)
	go func() {
		healthyDone <- RunAgent(healthyCtx, AgentConfig{
			Site: 1, Name: "healthy", Cores: 2,
			Sources: map[int]chunk.Source{1: src},
			Head:    InProcAgent{Head: h},
			Logf:    t.Logf,
		})
	}()

	if err := RunAgent(context.Background(), doomedCfg); err == nil {
		t.Fatal("doomed agent survived its injected failure")
	}
	// The head notices the loss (in live deployments via lease expiry or the
	// dropped session) and requeues everything site 0 hadn't persisted.
	h.FailSite(0)

	// Query B completes on the survivor while site 0 is down: the failure
	// did not disturb it.
	bObj, bReports, _, err := qb.Wait(context.Background())
	if err != nil {
		t.Fatalf("query B (undisturbed site): %v", err)
	}
	if got := bObj.(*sumObj).total; got != want {
		t.Errorf("query B sum = %d, want %d", got, want)
	}
	if len(bReports) != 1 || bReports[0].Site != 1 {
		t.Errorf("query B reports = %+v, want exactly site 1", bReports)
	}
	select {
	case <-qa.Done():
		t.Fatal("query A finished before its replacement site rejoined")
	default:
	}

	// The replacement re-registers for site 0 and query A recovers.
	inj.Arm()
	replCtx, replCancel := context.WithCancel(context.Background())
	defer replCancel()
	replDone := make(chan error, 1)
	go func() {
		replDone <- RunAgent(replCtx, doomedCfg)
	}()
	aObj, aReports, _, err := qa.Wait(context.Background())
	if err != nil {
		t.Fatalf("query A (recovered): %v", err)
	}
	if got := aObj.(*sumObj).total; got != want {
		t.Errorf("query A sum after recovery = %d, want %d", got, want)
	}
	if len(aReports) != 1 || aReports[0].Site != 0 {
		t.Errorf("query A reports = %+v, want exactly site 0", aReports)
	}

	h.Shutdown()
	for i, ch := range []chan error{healthyDone, replDone} {
		select {
		case err := <-ch:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("agent %d exit: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("agent %d did not exit after shutdown", i)
		}
	}
}

// TestAgentServesInterleavedQueries: one agent, one registration, one wire
// session — two queries' jobs interleave through the shared poll loop and
// both reduce to the right answer with isolated per-query stats.
func TestAgentServesInterleavedQueries(t *testing.T) {
	ix, src, want := buildDataset(t, 4000, 1000, 100) // 40 jobs per query
	h := multiTestHead(t, 1, config.Tuning{}, nil)
	qa := admitSum(t, h, ix, 0)
	qb := admitSum(t, h, ix, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunAgent(ctx, AgentConfig{
			Site: 0, Name: "solo", Cores: 2,
			Sources: map[int]chunk.Source{0: src},
			Head:    InProcAgent{Head: h},
			Logf:    t.Logf,
		})
	}()
	for i, q := range []*head.Query{qa, qb} {
		obj, reports, _, err := q.Wait(context.Background())
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got := obj.(*sumObj).total; got != want {
			t.Errorf("query %d sum = %d, want %d", i, got, want)
		}
		if len(reports) != 1 || reports[0].Jobs.Total() != ix.NumChunks() {
			t.Errorf("query %d reports = %+v, want all %d jobs on one site", i, reports, ix.NumChunks())
		}
	}
	h.Shutdown()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("agent exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not exit after shutdown")
	}
}

// TestRemoteAgentOverTCP drives the proto-1 wire session end to end: a
// RemoteAgent registers through Head.Serve, two queries run over the one
// connection, and a third is admitted mid-session.
func TestRemoteAgentOverTCP(t *testing.T) {
	ix, src, want := buildDataset(t, 4000, 1000, 100)
	h := multiTestHead(t, 1, config.Tuning{}, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = h.Serve(l) }()

	ra, err := DialAgent("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	qa := admitSum(t, h, ix, 0)
	qb := admitSum(t, h, ix, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	agentErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		agentErr <- RunAgent(ctx, AgentConfig{
			Site: 0, Name: "wire", Cores: 2,
			Sources: map[int]chunk.Source{0: src},
			Head:    ra,
			Logf:    t.Logf,
		})
	}()
	for i, q := range []*head.Query{qa, qb} {
		obj, _, _, err := q.Wait(context.Background())
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got := obj.(*sumObj).total; got != want {
			t.Errorf("query %d sum = %d, want %d", i, got, want)
		}
	}
	qc := admitSum(t, h, ix, 0) // mid-session admission over the same wire
	obj, _, _, err := qc.Wait(context.Background())
	if err != nil {
		t.Fatalf("late query: %v", err)
	}
	if got := obj.(*sumObj).total; got != want {
		t.Errorf("late query sum = %d, want %d", got, want)
	}
	h.Shutdown()
	wg.Wait()
	if err := <-agentErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("agent exit: %v", err)
	}
	// The head's Close waits for connection handlers, which read until the
	// master hangs up — so drop the agent's connection first.
	_ = ra.Close()
	_ = h.Close()
}
