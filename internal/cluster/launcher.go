package cluster

import (
	"context"
	"fmt"
	"sync"
)

// Worker is one elastically launched cluster agent. It runs until the head
// drains it (clean exit), its context is canceled, or it fails.
type Worker struct {
	site string // name, for logs
	id   int
	done chan struct{}

	mu  sync.Mutex
	err error
}

// Site returns the worker's site ID.
func (w *Worker) Site() int { return w.id }

// Done closes when the worker's agent loop has returned.
func (w *Worker) Done() <-chan struct{} { return w.done }

// Err returns the agent loop's exit error; nil means a clean exit (drain or
// head shutdown). Valid after Done closes.
func (w *Worker) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Launcher provisions cluster workers on demand — the elastic controller's
// actuator. Launch must register the worker with the head at the given site
// ID and start its agent loop; the worker departs when the head drains the
// site (or ctx is canceled).
type Launcher interface {
	Launch(ctx context.Context, site int, name string) (*Worker, error)
}

// AgentLauncher launches in-process multi-query agents (RunAgent goroutines)
// from a shared template — the live implementation of Launcher. Burst
// workers host no data of their own: the template's Sources/SourceBuilder
// describes how a new worker reaches every data site, and every job it runs
// is stolen work.
type AgentLauncher struct {
	// Template is copied per launch; Site and Name are overridden. Head is
	// used as-is unless Connect is set.
	Template AgentConfig
	// Connect, when set, opens a fresh head session per worker (e.g. a new
	// TCP connection from DialAgent); when nil every worker shares
	// Template.Head, which must then be safe for concurrent sessions (the
	// in-process client is).
	Connect func() (QueryClient, error)
}

// Launch implements Launcher.
func (l *AgentLauncher) Launch(ctx context.Context, site int, name string) (*Worker, error) {
	cfg := l.Template
	cfg.Site = site
	cfg.Name = name
	if l.Connect != nil {
		hc, err := l.Connect()
		if err != nil {
			return nil, fmt.Errorf("cluster: launching %s: %w", name, err)
		}
		cfg.Head = hc
	}
	if cfg.Head == nil {
		return nil, fmt.Errorf("cluster: launching %s: no head client (set Template.Head or Connect)", name)
	}
	w := &Worker{site: name, id: site, done: make(chan struct{})}
	go func() {
		err := RunAgent(ctx, cfg)
		w.mu.Lock()
		w.err = err
		w.mu.Unlock()
		close(w.done)
	}()
	return w, nil
}
