// Package cluster implements one cluster's runtime: a MASTER that keeps the
// cluster-local job pool fed by on-demand group requests to the head node,
// and SLAVE workers that retrieve assigned chunks (with multiple retrieval
// threads) and fold them through the Generalized Reduction engine. When the
// global pool is exhausted the cluster performs its local merge, ships its
// reduction object to the head, and waits (sync time) for the global
// reduction to finish.
//
// With fault tolerance enabled on the head, the runtime additionally renews
// its liveness lease with heartbeats, commits every job to the head BEFORE
// folding it (so the head can deduplicate speculative and recovered
// re-executions), ships periodic reduction-object checkpoints, and resumes
// from the checkpoint the head hands back after a crash-restart.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/chunk"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/stagecache"
	"repro/internal/stats"
)

// HeadClient is the master's view of the head node. Implementations:
// Remote (sockets, in this package) and head.Head itself via InProc.
type HeadClient interface {
	// Register announces the cluster and retrieves the job specification.
	Register(hello protocol.Hello) (protocol.JobSpec, error)
	// Poll asks for up to n jobs and returns the head's typed poll result:
	// grants grouped per query, completion notices, and the Wait hint. An
	// empty reply with Wait=false means the pool is exhausted for good;
	// Wait=true means recovery or speculation may yet produce work, so poll
	// again. Single-query masters see all grants under query 0.
	Poll(site, n int) (protocol.PollReply, error)
	// CompleteJobs commits finished jobs and returns the IDs the head
	// deduplicated; their contribution must not be folded.
	CompleteJobs(site int, js []jobs.Job) ([]int, error)
	// Heartbeat renews the site's liveness lease (fire-and-forget).
	Heartbeat(site int) error
	// Checkpoint persists a reduction-object checkpoint at the head.
	Checkpoint(cs protocol.CheckpointSave) error
	// SubmitResult delivers the cluster's reduction object and blocks until
	// the head finishes the global reduction, returning the final object.
	SubmitResult(res protocol.ReductionResult) ([]byte, error)
}

// waitPoll is how long the master sleeps before re-polling the head after an
// empty-but-not-final job grant (stragglers or failures may requeue work).
const waitPoll = 20 * time.Millisecond

// Config parameterizes one cluster worker process.
type Config struct {
	// Site is the storage site co-located with this cluster; jobs whose
	// data lives elsewhere count as stolen.
	Site int
	// Name labels the cluster in logs and reports ("local", "cloud").
	Name string
	// Cores is the number of processing threads. Required.
	Cores int
	// RetrievalThreads is the number of concurrent chunk retrievals
	// (each slave uses multiple retrieval threads). Defaults to 2.
	RetrievalThreads int
	// Tuning carries the knobs shared with the head and the driver —
	// PrefetchDepth (retrieval pipeline depth; defaults to RetrievalThreads),
	// GroupBytes (overrides the spec's unit-group budget when > 0), and
	// CheckpointEveryJobs (snapshot the reduction engine and ship a
	// checkpoint to the head every that many folded jobs; 0 disables).
	// Defined once in config.Tuning so every layer agrees on defaults.
	Tuning config.Tuning
	// Sources maps each site id to the Source this cluster uses to read
	// data hosted there (its own storage node, the object store client, …).
	// Either Sources or SourceBuilder is required.
	Sources map[int]chunk.Source
	// SourceBuilder constructs the site sources once the dataset index is
	// known — how daemon deployments, which learn the index from the head's
	// job spec, wire up their object-store clients.
	SourceBuilder func(ix *chunk.Index) (map[int]chunk.Source, error)
	// SourceLabels names sources for byte accounting; optional.
	SourceLabels map[int]string
	// Cache, when non-nil, interposes the burst-side partition cache on
	// every remote-site source: reads go memory tier → replica → origin,
	// fresh origin reads spill asynchronously to the replica, and the
	// master pre-stages each granted remote chunk in grant order. Reads of
	// the cluster's own site bypass the cache; nil disables it entirely.
	Cache *stagecache.Cache
	// Head connects to the head node. Required.
	Head HeadClient
	// RequestBatch is the job-group size per head request; defaults to
	// max(Cores, 4).
	RequestBatch int
	// Retry controls fault tolerance for transient retrieval failures
	// (dropped object-store connections, storage-node hiccups).
	Retry Retry
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Obs, when non-nil, collects cluster-side metrics (job counters,
	// per-source retrieval latency histograms, in-flight gauge) and — when
	// its tracer is enabled — per-job retrieval spans plus merge/sync spans.
	// Trace events use process id Site+1 with one thread lane per retrieval
	// thread, matching the simulator's pid/tid layout, so live and simulated
	// traces render identically in Perfetto.
	Obs *obs.Obs
}

// Retry is the retrieval fault-tolerance policy: each chunk fetch is
// attempted up to Attempts times, sleeping a capped exponential backoff with
// deterministic jitter between tries (base, 2×base, 4×base, … up to Cap,
// each halved plus a seeded-random half — "equal jitter").
//
// The zero value means 3 attempts, a 50 ms base backoff, a 2 s delay cap,
// and jitter seed 0; two clusters running the same Seed sleep the same
// sequence of delays, keeping fault drills reproducible.
//
// Permanent failures — a missing object, an out-of-range read, anything
// satisfying fault.PermanentError, or a chunk.ErrBounds — are not retried;
// transient failures (dropped connections, short reads, checksum mismatches
// from a garbled transfer) are.
type Retry struct {
	Attempts int
	Backoff  time.Duration
	Cap      time.Duration
	Seed     uint64
}

func (r Retry) attempts() int {
	if r.Attempts <= 0 {
		return 3
	}
	return r.Attempts
}

func (r Retry) backoff() time.Duration {
	if r.Backoff <= 0 {
		return 50 * time.Millisecond
	}
	return r.Backoff
}

// Report summarizes the cluster's run.
type Report struct {
	Site      int
	Name      string
	Cores     int
	Breakdown stats.Breakdown
	Jobs      stats.JobAccounting
	Bytes     map[string]int64 // bytes retrieved per source label
	Final     []byte           // encoded final (post-global-reduction) object
}

func (c *Config) applyDefaults() error {
	if c.Cores <= 0 {
		return fmt.Errorf("cluster: Cores must be positive, got %d", c.Cores)
	}
	if c.Head == nil {
		return errors.New("cluster: Head client is required")
	}
	if len(c.Sources) == 0 && c.SourceBuilder == nil {
		return errors.New("cluster: Sources or SourceBuilder is required")
	}
	if c.RetrievalThreads <= 0 {
		c.RetrievalThreads = 2
	}
	if c.Tuning.PrefetchDepth <= 0 {
		c.Tuning.PrefetchDepth = c.RetrievalThreads
	}
	if c.RequestBatch <= 0 {
		c.RequestBatch = c.Cores
		if c.RequestBatch < 4 {
			c.RequestBatch = 4
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Run executes the cluster's share of one job: register, process jobs until
// the global pool is dry, then local-merge, submit, and wait for the final
// result. It blocks until the whole run (all clusters) completes.
func Run(cfg Config) (*Report, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	spec, err := cfg.Head.Register(protocol.Hello{Site: cfg.Site, Cluster: cfg.Name, Cores: cfg.Cores})
	if err != nil {
		return nil, fmt.Errorf("cluster %s: register: %w", cfg.Name, err)
	}
	ix, err := chunk.ReadIndex(bytes.NewReader(spec.Index))
	if err != nil {
		return nil, fmt.Errorf("cluster %s: bad index in job spec: %w", cfg.Name, err)
	}
	if len(cfg.Sources) == 0 {
		if cfg.Sources, err = cfg.SourceBuilder(ix); err != nil {
			return nil, fmt.Errorf("cluster %s: building sources: %w", cfg.Name, err)
		}
	}
	// rawSources keeps the unwrapped per-site sources for the pre-stager,
	// which must not loop through the cache it feeds. The cache wraps only
	// remote-site reads; checksum verification (below) stays outermost, so
	// replica-served bytes are verified exactly like origin bytes.
	rawSources := cfg.Sources
	if cfg.Cache != nil {
		cached := make(map[int]chunk.Source, len(cfg.Sources))
		for site, src := range cfg.Sources {
			if site != cfg.Site {
				src = cfg.Cache.Wrap(site, src)
			}
			cached[site] = src
		}
		cfg.Sources = cached
	}
	if ix.HasChecksums() {
		// The index carries per-chunk CRCs: verify every retrieval
		// transparently, whatever the source.
		verified := make(map[int]chunk.Source, len(cfg.Sources))
		for site, src := range cfg.Sources {
			verified[site] = chunk.VerifyingSource{Source: src, Index: ix}
		}
		cfg.Sources = verified
	}
	reducer, err := core.NewReducer(spec.App, spec.Params)
	if err != nil {
		return nil, fmt.Errorf("cluster %s: %w", cfg.Name, err)
	}
	groupBytes := spec.GroupBytes
	if cfg.Tuning.GroupBytes > 0 {
		groupBytes = cfg.Tuning.GroupBytes
	}
	batch := cfg.RequestBatch
	if spec.GroupSize > 0 {
		batch = spec.GroupSize
	}

	clk := cfg.Obs.ClockOrWall()
	tr := cfg.Obs.Trace()
	reg := cfg.Obs.Metrics()
	pid := cfg.Site + 1
	tr.NameProcess(pid, fmt.Sprintf("cluster-%s", cfg.Name))
	tr.NameThread(pid, 0, "master")
	// The prefetch pipeline: PrefetchDepth retrieval lanes keep that many
	// chunks in flight ahead of the fold (the engine queue is sized to
	// match, so a burst of completions never blocks the lanes needlessly).
	lanes := cfg.Tuning.PrefetchDepth
	for t := 0; t < lanes; t++ {
		tr.NameThread(pid, 1+t, fmt.Sprintf("retr-%d", t+1))
	}
	mLocal := reg.Counter("cluster_jobs_local_total")
	mStolen := reg.Counter("cluster_jobs_stolen_total")
	mRetries := reg.Counter("cluster_retrieval_retries_total")
	mDups := reg.Counter("cluster_dup_jobs_total")
	mCkpts := reg.Counter("cluster_checkpoints_total")
	gInflight := reg.Gauge("cluster_retrievals_inflight")
	reg.Gauge("cluster_prefetch_depth").Set(int64(lanes))
	bufpool.Register(reg)

	collector := &stats.Collector{}
	engine, err := core.NewEngine(core.EngineConfig{
		Reducer:    reducer,
		Workers:    cfg.Cores,
		UnitSize:   spec.UnitSize,
		GroupBytes: groupBytes,
		QueueDepth: lanes,
		Collector:  collector,
		// Chunk buffers come from bufpool (sources and the objstore client
		// read into pooled buffers); the engine is the last owner and
		// returns each one after its units are folded.
		Release: bufpool.Put,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster %s: %w", cfg.Name, err)
	}

	// Checkpoint/recovery state. resumeObj is the reduction object recovered
	// from the head after a crash-restart; it is NEVER mutated — each
	// checkpoint and the final merge fold it into a fresh engine snapshot,
	// because engine.Snapshot is cumulative.
	var (
		resumeObj core.Object
		ckptMu    sync.RWMutex // folds hold RLock; a checkpoint holds Lock
		idsMu     sync.Mutex
		folded    []int // job IDs committed AND folded, cumulative
		ckptSeq   int
		foldedN   atomic.Int64 // jobs folded this incarnation (ckpt trigger)
	)
	if len(spec.Checkpoint) > 0 {
		ck, err := fault.DecodeCheckpoint(spec.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("cluster %s: bad checkpoint in job spec: %w", cfg.Name, err)
		}
		if resumeObj, err = reducer.Decode(ck.Object); err != nil {
			return nil, fmt.Errorf("cluster %s: decoding checkpoint object: %w", cfg.Name, err)
		}
		ckptSeq = ck.Seq
		folded = append(folded, ck.Completed...)
		cfg.Logf("cluster %s: resuming from checkpoint seq %d (%d jobs covered)",
			cfg.Name, ck.Seq, len(ck.Completed))
	}

	// checkpoint quiesces the engine, merges the snapshot with the resumed
	// object, and ships the result (plus the covered job IDs) to the head.
	checkpoint := func() error {
		ckptMu.Lock()
		snap, err := engine.Snapshot()
		if err == nil && resumeObj != nil {
			err = reducer.GlobalReduce(snap, resumeObj)
		}
		var enc []byte
		if err == nil {
			enc, err = reducer.Encode(snap)
		}
		if err != nil {
			ckptMu.Unlock()
			return err
		}
		idsMu.Lock()
		ids := make([]int, len(folded))
		copy(ids, folded)
		idsMu.Unlock()
		sort.Ints(ids)
		ckptSeq++
		seq := ckptSeq
		ckptMu.Unlock()
		data := fault.Checkpoint{Site: cfg.Site, Seq: seq, Object: enc, Completed: ids}.Encode()
		if err := cfg.Head.Checkpoint(protocol.CheckpointSave{Site: cfg.Site, Seq: seq, Data: data}); err != nil {
			return err
		}
		mCkpts.Inc()
		if tr.Enabled() {
			tr.Instant(pid, 0, "fault", fmt.Sprintf("checkpoint %d", seq),
				obs.Args{"seq": seq, "jobs": len(ids), "bytes": len(data)})
		}
		cfg.Logf("cluster %s: checkpoint %d shipped (%d jobs, %d bytes)", cfg.Name, seq, len(ids), len(data))
		return nil
	}

	// Heartbeats renew the cluster's liveness lease at the head. They stop
	// before SubmitResult: the head releases the lease when the result
	// arrives, and the remote connection is busy with the blocking wait.
	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup
	if hb := time.Duration(spec.HeartbeatEvery); hb > 0 {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-stopHB:
					return
				case <-t.C:
					_ = cfg.Head.Heartbeat(cfg.Site)
				}
			}
		}()
	}
	stopHeartbeats := func() {
		select {
		case <-stopHB:
		default:
			close(stopHB)
		}
		hbWG.Wait()
	}
	defer stopHeartbeats()

	// Master: feed the cluster-local pool with on-demand group requests.
	// The buffered channel is the local job pool; requesting the next group
	// only when there is room implements "whenever a cluster's job pool is
	// diminishing, its master interacts with the head to request more".
	// stopFeed aborts the loop when a slave hits an unrecoverable error, so
	// an empty-but-undrained pool (wait=true) cannot spin forever.
	jobCh := make(chan jobs.Job, batch)
	feedErr := make(chan error, 1)
	stopFeed := make(chan struct{})
	var stopOnce sync.Once
	abortFeed := func() { stopOnce.Do(func() { close(stopFeed) }) }
	go func() {
		defer close(jobCh)
		for {
			select {
			case <-stopFeed:
				feedErr <- nil
				return
			default:
			}
			rep, err := cfg.Head.Poll(cfg.Site, batch)
			if err != nil {
				feedErr <- fmt.Errorf("cluster %s: job request: %w", cfg.Name, err)
				return
			}
			var granted []jobs.Job
			for _, qj := range rep.Queries {
				granted = append(granted, qj.Jobs...)
			}
			if cfg.Cache != nil {
				// Push each granted remote chunk toward the replica in grant
				// order; the stager skips anything a read-through already
				// cached, so the overlap with the slaves is cheap.
				var bySite map[int][]chunk.Ref
				for _, j := range granted {
					if j.Site == cfg.Site {
						continue
					}
					if bySite == nil {
						bySite = make(map[int][]chunk.Ref)
					}
					bySite[j.Site] = append(bySite[j.Site], j.Ref)
				}
				for site, refs := range bySite {
					cfg.Cache.Prestage(site, rawSources[site], refs)
				}
			}
			if len(granted) == 0 {
				if !rep.Wait {
					feedErr <- nil
					return
				}
				select {
				case <-stopFeed:
					feedErr <- nil
					return
				case <-time.After(waitPoll):
				}
				continue
			}
			for _, j := range granted {
				select {
				case jobCh <- j:
				case <-stopFeed:
					feedErr <- nil
					return
				}
			}
		}
	}()

	// Slaves: retrieval threads pull jobs, fetch chunk payloads, commit them
	// to the head (which deduplicates re-executions), and push non-duplicates
	// into the reduction engine (which applies back-pressure).
	var (
		wg       sync.WaitGroup
		slaveMu  sync.Mutex
		slaveErr error
	)
	fail := func(err error) {
		slaveMu.Lock()
		if slaveErr == nil {
			slaveErr = err
		}
		slaveMu.Unlock()
		abortFeed()
	}
	for t := 0; t < lanes; t++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for j := range jobCh {
				src, ok := cfg.Sources[j.Site]
				if !ok {
					fail(fmt.Errorf("cluster %s: no source for site %d", cfg.Name, j.Site))
					continue
				}
				label := cfg.sourceLabel(j.Site)
				gInflight.Add(1)
				start := clk.Now()
				data, err := retrieveWithRetry(&cfg, src, j, mRetries)
				elapsed := clk.Now() - start
				gInflight.Add(-1)
				if err != nil {
					fail(fmt.Errorf("cluster %s: retrieving %v: %w", cfg.Name, j.Ref, err))
					continue
				}
				collector.AddRetrieval(label, elapsed, int64(len(data)))
				reg.Histogram("cluster_retrieval_seconds_"+label, nil).Observe(elapsed)
				if tr.Enabled() {
					tr.Complete(pid, lane, "retrieval", fmt.Sprintf("job %d", j.ID), start, start+elapsed,
						obs.Args{"file": j.Ref.File, "seq": j.Ref.Seq, "site": j.Site,
							"bytes": len(data), "stolen": j.Site != cfg.Site})
				}
				// Commit BEFORE folding: if the head says the job is a
				// duplicate (a speculative copy or a recovered re-execution
				// already supplied it), its payload must not be folded —
				// exactly-once reduction is enforced here.
				dups, err := cfg.Head.CompleteJobs(cfg.Site, []jobs.Job{j})
				if err != nil {
					bufpool.Put(data)
					fail(err)
					continue
				}
				if len(dups) > 0 {
					bufpool.Put(data)
					mDups.Inc()
					continue
				}
				ckptMu.RLock()
				err = engine.Submit(data)
				if err == nil {
					idsMu.Lock()
					folded = append(folded, j.ID)
					idsMu.Unlock()
				}
				ckptMu.RUnlock()
				if err != nil {
					// Not queued: the engine never saw the buffer, so the
					// lane is still its owner.
					bufpool.Put(data)
					fail(err)
					continue
				}
				collector.CountJob(j.Site != cfg.Site)
				if j.Site != cfg.Site {
					mStolen.Inc()
				} else {
					mLocal.Inc()
				}
				if every := cfg.Tuning.CheckpointEveryJobs; every > 0 {
					if n := foldedN.Add(1); n%int64(every) == 0 {
						if err := checkpoint(); err != nil {
							// Checkpointing is best-effort: a failed write
							// just means more recomputation after a crash.
							cfg.Logf("cluster %s: checkpoint failed: %v", cfg.Name, err)
						}
					}
				}
			}
		}(1 + t)
	}
	wg.Wait()
	if err := <-feedErr; err != nil {
		_, _ = engine.Finish()
		return nil, err
	}
	slaveMu.Lock()
	err = slaveErr
	slaveMu.Unlock()
	if err != nil {
		_, _ = engine.Finish()
		return nil, err
	}

	// Local (intra-cluster) merge of the per-core reduction objects, folding
	// in the resumed checkpoint object if this incarnation restarted.
	mergeSpan := tr.Begin(pid, 0, "sync", "local-merge")
	mergeTimer := stats.StartTimerOn(clk, collector.AddSync)
	obj, err := engine.Finish()
	if err != nil {
		return nil, fmt.Errorf("cluster %s: local reduction: %w", cfg.Name, err)
	}
	if resumeObj != nil {
		if err := reducer.GlobalReduce(obj, resumeObj); err != nil {
			return nil, fmt.Errorf("cluster %s: merging recovered checkpoint: %w", cfg.Name, err)
		}
	}
	encoded, err := reducer.Encode(obj)
	if err != nil {
		return nil, fmt.Errorf("cluster %s: encoding reduction object: %w", cfg.Name, err)
	}
	mergeTimer.Stop()
	mergeSpan.End(obs.Args{"bytes": len(encoded)})

	// Global reduction: ship the object, then idle until everyone is done.
	// This blocked interval is the cluster's sync time. The head releases
	// the cluster's lease on receipt, so heartbeats stop here.
	stopHeartbeats()
	b := collector.Breakdown()
	jacct := collector.Jobs()
	waitSpan := tr.Begin(pid, 0, "sync", "global-reduction-wait")
	syncTimer := stats.StartTimerOn(clk, collector.AddSync)
	final, err := cfg.Head.SubmitResult(protocol.ReductionResult{
		Site:       cfg.Site,
		Object:     encoded,
		Processing: int64(b.Processing),
		Retrieval:  int64(b.Retrieval),
		Sync:       int64(b.Sync),
		LocalJobs:  jacct.Local,
		StolenJobs: jacct.Stolen,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster %s: submitting result: %w", cfg.Name, err)
	}
	syncTimer.Stop()
	waitSpan.End(nil)
	cfg.Logf("cluster %s: done (%v)", cfg.Name, collector.Breakdown())

	return &Report{
		Site:      cfg.Site,
		Name:      cfg.Name,
		Cores:     cfg.Cores,
		Breakdown: collector.Breakdown(),
		Jobs:      jacct,
		Bytes:     collector.BytesRetrieved(),
		Final:     final,
	}, nil
}

// retrieveWithRetry fetches one chunk under the cluster's retry policy:
// capped exponential backoff with deterministic jitter between attempts,
// bailing out immediately on permanently-failing requests.
func retrieveWithRetry(cfg *Config, src chunk.Source, j jobs.Job, retries *obs.Counter) ([]byte, error) {
	bo := fault.Backoff{Base: cfg.Retry.backoff(), Cap: cfg.Retry.Cap, Seed: cfg.Retry.Seed}
	attempts := cfg.Retry.attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			retries.Inc()
			time.Sleep(bo.Delay(attempt - 1))
			cfg.Logf("cluster %s: retrying %v (attempt %d): %v", cfg.Name, j.Ref, attempt, lastErr)
		}
		data, err := src.ReadChunk(j.Ref)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if fault.IsPermanent(err) || errors.Is(err, chunk.ErrBounds) {
			return nil, fmt.Errorf("permanent failure (no retry): %w", err)
		}
	}
	return nil, fmt.Errorf("after %d attempts: %w", attempts, lastErr)
}

func (c *Config) sourceLabel(site int) string {
	if l, ok := c.SourceLabels[site]; ok {
		return l
	}
	if site == c.Site {
		return "local"
	}
	return fmt.Sprintf("site%d", site)
}
