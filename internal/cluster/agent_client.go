package cluster

import (
	"fmt"

	"repro/internal/head"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// QueryClient is the agent's view of a multi-query head: one registration
// and one session shared by every admitted query, with per-query spec
// fetches, commits, checkpoints and results. Implementations: InProcAgent
// (same process) and RemoteAgent (proto-1 wire session).
type QueryClient interface {
	// RegisterSite opens the shared session; per-query specs are fetched
	// lazily with QuerySpec as queries first appear in a poll.
	RegisterSite(hello protocol.Hello) (protocol.SiteSpec, error)
	// QuerySpec fetches one query's job specification (plus this site's
	// recovery checkpoint for it, if any).
	QuerySpec(site, query int) (protocol.JobSpec, error)
	// Poll asks for up to req.N jobs across all queries; see head.PollFrom.
	// The full request travels so completed trace spans (and the clock
	// sample that aligns them) piggyback on the poll.
	Poll(req protocol.PollRequest) (protocol.PollReply, error)
	// CompleteJobs commits finished jobs for one query and returns the IDs
	// the head deduplicated; their contribution must not be folded.
	CompleteJobs(done protocol.JobsDone) ([]int, error)
	// Heartbeat renews the site's liveness lease (fire-and-forget).
	Heartbeat(site int) error
	// Checkpoint persists a per-query reduction-object checkpoint.
	Checkpoint(cs protocol.CheckpointSave) error
	// SubmitResult delivers one query's reduction object. Unlike the legacy
	// blocking submit it returns as soon as the head acknowledges, so the
	// agent keeps serving its other queries.
	SubmitResult(res protocol.ReductionResult) error
}

// InProcAgent adapts a head.Head in the same process to QueryClient.
type InProcAgent struct{ Head *head.Head }

// RegisterSite implements QueryClient.
func (c InProcAgent) RegisterSite(hello protocol.Hello) (protocol.SiteSpec, error) {
	return c.Head.RegisterSite(hello)
}

// QuerySpec implements QueryClient.
func (c InProcAgent) QuerySpec(site, query int) (protocol.JobSpec, error) {
	return c.Head.QuerySpec(site, query)
}

// Poll implements QueryClient.
func (c InProcAgent) Poll(req protocol.PollRequest) (protocol.PollReply, error) {
	return c.Head.PollFrom(req)
}

// CompleteJobs implements QueryClient.
func (c InProcAgent) CompleteJobs(done protocol.JobsDone) ([]int, error) {
	return c.Head.CompleteQueryJobs(done.Query, done.Site, done.Jobs)
}

// Heartbeat implements QueryClient.
func (c InProcAgent) Heartbeat(site int) error {
	c.Head.Heartbeat(site)
	return nil
}

// Checkpoint implements QueryClient.
func (c InProcAgent) Checkpoint(cs protocol.CheckpointSave) error {
	return c.Head.CheckpointSave(cs)
}

// SubmitResult implements QueryClient.
func (c InProcAgent) SubmitResult(res protocol.ReductionResult) error {
	return c.Head.SubmitQueryResult(res)
}

// RemoteAgent speaks the multi-query (proto 1) master protocol over one
// transport connection. Like Remote, the master is the only requester and
// every request expecting a reply is serialized under a mutex, so replies
// correlate by ordering; heartbeats are fire-and-forget.
type RemoteAgent struct {
	remote Remote
}

// NewRemoteAgent wraps an established connection to the head node.
func NewRemoteAgent(conn *transport.Conn) *RemoteAgent {
	return &RemoteAgent{remote: Remote{conn: conn}}
}

// DialAgent connects a multi-query agent to the head node at addr.
func DialAgent(network, addr string) (*RemoteAgent, error) {
	conn, err := transport.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewRemoteAgent(conn), nil
}

// SetUseGob pins the session to the gob compat codec (see Remote.UseGob).
func (r *RemoteAgent) SetUseGob(v bool) { r.remote.UseGob = v }

// Close closes the underlying connection.
func (r *RemoteAgent) Close() error { return r.remote.conn.Close() }

// RegisterSite implements QueryClient; it also performs the wire-codec
// negotiation, upgrading both directions when the SiteSpec confirms binary.
func (r *RemoteAgent) RegisterSite(hello protocol.Hello) (protocol.SiteSpec, error) {
	hello.Proto = protocol.ProtoMulti
	if !r.remote.UseGob {
		hello.Codec = protocol.WireBinary
	}
	reply, err := r.remote.roundTrip(hello)
	if err != nil {
		return protocol.SiteSpec{}, err
	}
	switch m := reply.(type) {
	case protocol.SiteSpec:
		if m.Codec == protocol.WireBinary {
			r.remote.conn.UpgradeSend(transport.CodecBinary)
			r.remote.conn.UpgradeRecv(transport.CodecBinary)
		}
		return m, nil
	case protocol.ErrorReply:
		return protocol.SiteSpec{}, head.CodeError(m.Code, m.Err)
	default:
		return protocol.SiteSpec{}, fmt.Errorf("cluster: unexpected reply %T to Hello", reply)
	}
}

// QuerySpec implements QueryClient.
func (r *RemoteAgent) QuerySpec(site, query int) (protocol.JobSpec, error) {
	reply, err := r.remote.roundTrip(protocol.QuerySpecRequest{Site: site, Query: query})
	if err != nil {
		return protocol.JobSpec{}, err
	}
	switch m := reply.(type) {
	case protocol.JobSpec:
		return m, nil
	case protocol.ErrorReply:
		return protocol.JobSpec{}, head.CodeError(m.Code, m.Err)
	default:
		return protocol.JobSpec{}, fmt.Errorf("cluster: unexpected reply %T to QuerySpecRequest", reply)
	}
}

// Poll implements QueryClient.
func (r *RemoteAgent) Poll(req protocol.PollRequest) (protocol.PollReply, error) {
	reply, err := r.remote.roundTrip(req)
	if err != nil {
		return protocol.PollReply{}, err
	}
	switch m := reply.(type) {
	case protocol.PollReply:
		return m, nil
	case protocol.ErrorReply:
		return protocol.PollReply{}, head.CodeError(m.Code, m.Err)
	default:
		return protocol.PollReply{}, fmt.Errorf("cluster: unexpected reply %T to PollRequest", reply)
	}
}

// CompleteJobs implements QueryClient.
func (r *RemoteAgent) CompleteJobs(done protocol.JobsDone) ([]int, error) {
	reply, err := r.remote.roundTrip(done)
	if err != nil {
		return nil, err
	}
	switch m := reply.(type) {
	case protocol.JobsDoneAck:
		if m.Err != "" {
			return m.Dup, head.CodeError(m.Code, m.Err)
		}
		return m.Dup, nil
	case protocol.ErrorReply:
		return nil, head.CodeError(m.Code, m.Err)
	default:
		return nil, fmt.Errorf("cluster: unexpected reply %T to JobsDone", reply)
	}
}

// Heartbeat implements QueryClient. No reply is expected.
func (r *RemoteAgent) Heartbeat(site int) error {
	return r.remote.Heartbeat(site)
}

// Checkpoint implements QueryClient.
func (r *RemoteAgent) Checkpoint(cs protocol.CheckpointSave) error {
	return r.remote.Checkpoint(cs)
}

// SubmitResult implements QueryClient.
func (r *RemoteAgent) SubmitResult(res protocol.ReductionResult) error {
	reply, err := r.remote.roundTrip(res)
	if err != nil {
		return err
	}
	switch m := reply.(type) {
	case protocol.ResultAck:
		if m.Err != "" {
			return head.CodeError(m.Code, m.Err)
		}
		return nil
	case protocol.ErrorReply:
		return head.CodeError(m.Code, m.Err)
	default:
		return fmt.Errorf("cluster: unexpected reply %T to ReductionResult", reply)
	}
}

var (
	_ QueryClient = InProcAgent{}
	_ QueryClient = (*RemoteAgent)(nil)
)
