package fault

import (
	"sort"
	"sync"
	"time"
)

// Leases tracks per-site liveness leases. A site's lease is renewed by every
// heartbeat (and by any other message from the site); a site whose lease
// stays unrenewed for longer than the TTL is expired and its in-flight work
// is recovered. Time is passed in explicitly as a duration-since-start so
// the same code runs against the wall clock (live head) and the virtual
// clock (simulator) and is unit-testable without sleeping.
//
// The zero value is not usable; use NewLeases.
type Leases struct {
	ttl time.Duration

	mu      sync.Mutex
	renewed map[int]time.Duration // site -> last renewal instant
	dead    map[int]bool          // site -> declared failed (until Revive)
}

// NewLeases returns a lease table with the given TTL. A non-positive TTL
// disables expiry: Expired always returns nil.
func NewLeases(ttl time.Duration) *Leases {
	return &Leases{
		ttl:     ttl,
		renewed: make(map[int]time.Duration),
		dead:    make(map[int]bool),
	}
}

// TTL returns the lease duration.
func (l *Leases) TTL() time.Duration { return l.ttl }

// Renew records a liveness signal from site at instant now. Renewing a dead
// site's lease does not revive it — recovery must go through Revive so the
// head can hand the site its checkpoint first.
func (l *Leases) Renew(site int, now time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dead[site] {
		l.renewed[site] = now
	}
}

// Expired returns the sites whose leases have lapsed as of now (sorted),
// without marking them dead; callers decide what expiry means.
func (l *Leases) Expired(now time.Duration) []int {
	if l.ttl <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int
	for site, at := range l.renewed {
		if !l.dead[site] && now-at > l.ttl {
			out = append(out, site)
		}
	}
	sort.Ints(out)
	return out
}

// MarkDead declares site failed; its lease stops counting until Revive.
// Returns false if the site was already dead (so detection runs once).
func (l *Leases) MarkDead(site int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead[site] {
		return false
	}
	l.dead[site] = true
	delete(l.renewed, site)
	return true
}

// Release stops tracking site's lease without marking it failed — called
// when a site has delivered its final result, so a long global-reduction
// wait (during which the site has nothing left to say) cannot be mistaken
// for a failure.
func (l *Leases) Release(site int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.renewed, site)
}

// Dead reports whether site is currently marked failed.
func (l *Leases) Dead(site int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead[site]
}

// Revive clears site's dead mark and starts a fresh lease at now — called
// when a restarted/replacement worker re-registers.
func (l *Leases) Revive(site int, now time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.dead, site)
	l.renewed[site] = now
}
