package fault

import (
	"errors"
	"testing"

	"repro/internal/chunk"
)

func injectorSource(t *testing.T) (*chunk.Index, *chunk.MemSource) {
	t.Helper()
	ix, err := chunk.Layout("data", 8, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	for f := range ix.Files {
		if err := src.WriteFile(ix.Files[f].Name, []byte{0, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	return ix, src
}

func TestInjectorKillAfter(t *testing.T) {
	ix, src := injectorSource(t)
	inj := &Injector{Source: src, KillAfter: 2}
	ref := ix.Files[0].Chunks[0]
	for i := 0; i < 2; i++ {
		if _, err := inj.ReadChunk(ref); err != nil {
			t.Fatalf("read %d before kill: %v", i, err)
		}
	}
	if _, err := inj.ReadChunk(ref); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after kill = %v, want ErrInjected", err)
	}
	// Stays dead.
	if _, err := inj.ReadChunk(ref); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read after kill = %v, want ErrInjected", err)
	}
	inj.Arm()
	if _, err := inj.ReadChunk(ref); err != nil {
		t.Fatalf("read after Arm: %v", err)
	}
}

func TestInjectorFailEvery(t *testing.T) {
	ix, src := injectorSource(t)
	inj := &Injector{Source: src, FailEvery: 3}
	var fails int
	for i := 0; i < 9; i++ {
		if _, err := inj.ReadChunk(ix.Files[0].Chunks[0]); errors.Is(err, ErrInjected) {
			fails++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if fails != 3 {
		t.Fatalf("fails = %d, want 3", fails)
	}
}
