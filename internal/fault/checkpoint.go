package fault

import (
	"encoding/binary"
	"fmt"
)

// Checkpoint is one cluster's recovery state: the merged reduction object
// covering every job the cluster has folded so far, plus the list of those
// job IDs. Because GlobalReduce is associative and the pool guarantees each
// job folds exactly once, a restarted worker that (a) seeds its reduction
// object from the checkpoint and (b) never re-folds a job in Completed
// produces the same final object as an uninterrupted run.
//
// The head also uses the Completed set as the re-issue boundary: when a
// site dies, completions the head accepted after the site's last checkpoint
// are lost with the site's in-memory object, so they go back to the pool.
type Checkpoint struct {
	// Site is the owning cluster's storage-site ID.
	Site int
	// Seq increases with every checkpoint a cluster takes (1-based), so
	// stale writes racing a restart cannot roll state back.
	Seq int
	// Object is the encoded merged reduction object.
	Object []byte
	// Completed lists the job IDs covered by Object, ascending.
	Completed []int
}

// checkpointMagic guards against decoding garbage or foreign objects.
const checkpointMagic = 0xC4EC4EC1

// Encode serializes the checkpoint into a self-describing binary blob
// (fixed little-endian header, then the job bitmap as varint deltas, then
// the object bytes).
func (c Checkpoint) Encode() []byte {
	buf := make([]byte, 0, 32+len(c.Completed)*2+len(c.Object))
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.Site))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.Seq))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(c.Completed)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(c.Object)))
	buf = append(buf, hdr[:]...)
	prev := 0
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range c.Completed {
		n := binary.PutUvarint(tmp[:], uint64(id-prev))
		buf = append(buf, tmp[:n]...)
		prev = id
	}
	return append(buf, c.Object...)
}

// DecodeCheckpoint reverses Encode.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var c Checkpoint
	if len(data) < 20 {
		return c, fmt.Errorf("fault: checkpoint truncated (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != checkpointMagic {
		return c, fmt.Errorf("fault: bad checkpoint magic %#x", m)
	}
	c.Site = int(binary.LittleEndian.Uint32(data[4:]))
	c.Seq = int(binary.LittleEndian.Uint32(data[8:]))
	njobs := int(binary.LittleEndian.Uint32(data[12:]))
	objLen := int(binary.LittleEndian.Uint32(data[16:]))
	rest := data[20:]
	c.Completed = make([]int, 0, njobs)
	prev := 0
	for i := 0; i < njobs; i++ {
		d, n := binary.Uvarint(rest)
		if n <= 0 {
			return c, fmt.Errorf("fault: checkpoint job list truncated at entry %d", i)
		}
		prev += int(d)
		c.Completed = append(c.Completed, prev)
		rest = rest[n:]
	}
	if len(rest) != objLen {
		return c, fmt.Errorf("fault: checkpoint object is %d bytes, header says %d", len(rest), objLen)
	}
	c.Object = rest
	return c, nil
}

// Key returns the object-store key for site's checkpoint under prefix,
// e.g. Key("ckpt", 1) == "ckpt/site-1". Each site keeps a single key that
// later checkpoints overwrite; Seq disambiguates stale content.
func Key(prefix string, site int) string {
	if prefix == "" {
		prefix = "ckpt"
	}
	return fmt.Sprintf("%s/site-%d", prefix, site)
}

// QueryKey returns the object-store key for a (query, site) checkpoint in a
// multi-query head. Query 0 maps to the legacy single-query Key so a head
// upgraded in place keeps finding checkpoints written before the upgrade.
func QueryKey(prefix string, query, site int) string {
	if query == 0 {
		return Key(prefix, site)
	}
	if prefix == "" {
		prefix = "ckpt"
	}
	return fmt.Sprintf("%s/q%d/site-%d", prefix, query, site)
}

// Store is the persistence interface checkpoints are written through. The
// objstore client and MemStore satisfy it.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
}

// MemStore is an in-memory Store for tests and in-process runs.
type MemStore struct {
	mu   chan struct{} // 1-buffered mutex so the zero value needs a ctor
	objs map[string][]byte
}

// NewMemStore returns an empty in-memory checkpoint store.
func NewMemStore() *MemStore {
	m := &MemStore{mu: make(chan struct{}, 1), objs: make(map[string][]byte)}
	return m
}

// Put implements Store.
func (m *MemStore) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu <- struct{}{}
	m.objs[key] = cp
	<-m.mu
	return nil
}

// Get implements Store. A missing key returns a permanent error.
func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu <- struct{}{}
	data, ok := m.objs[key]
	<-m.mu
	if !ok {
		return nil, AsPermanent(fmt.Errorf("fault: no checkpoint at %q", key))
	}
	return data, nil
}
