package fault

import (
	"errors"
	"sync/atomic"

	"repro/internal/chunk"
)

// ErrInjected is the sentinel every injected failure wraps, so tests can
// tell a planned fault from a real one.
var ErrInjected = errors.New("fault: injected failure")

// Injector wraps a chunk.Source and fails reads on a deterministic
// schedule — the live-mode analogue of the simulator's crash events, used
// by the e2e recovery tests and fault drills.
//
// Two modes compose:
//
//   - KillAfter n: the n+1'th read (and every later one) fails, simulating
//     a worker whose data path died mid-run. Arm() re-opens the source,
//     simulating the restarted replacement.
//   - FailEvery n: every n'th read fails once (transient flakiness); the
//     retry layer should absorb these invisibly.
type Injector struct {
	// Source is the wrapped real source.
	Source chunk.Source
	// KillAfter kills the source permanently after this many successful
	// reads; 0 disables.
	KillAfter int64
	// FailEvery fails every n'th read with a transient error; 0 disables.
	FailEvery int64

	reads  atomic.Int64
	killed atomic.Bool
}

// ReadChunk implements chunk.Source.
func (i *Injector) ReadChunk(ref chunk.Ref) ([]byte, error) {
	if i.killed.Load() {
		return nil, ErrInjected
	}
	n := i.reads.Add(1)
	if i.KillAfter > 0 && n > i.KillAfter {
		i.killed.Store(true)
		return nil, ErrInjected
	}
	if i.FailEvery > 0 && n%i.FailEvery == 0 {
		return nil, ErrInjected
	}
	return i.Source.ReadChunk(ref)
}

// Kill fails all subsequent reads until Arm.
func (i *Injector) Kill() { i.killed.Store(true) }

// Arm revives a killed injector and resets the read counter — the restarted
// worker's fresh data path.
func (i *Injector) Arm() {
	i.reads.Store(0)
	i.killed.Store(false)
	i.KillAfter = 0
}

// Reads returns the number of reads attempted since the last Arm.
func (i *Injector) Reads() int64 { return i.reads.Load() }
