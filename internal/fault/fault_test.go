package fault

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestPlanTextRoundTrip(t *testing.T) {
	p := Plan{
		Events: []Event{
			{At: 10 * time.Second, Site: 0, Kind: Slowdown, Factor: 4},
			{At: 30 * time.Second, Site: 1, Kind: Crash},
			{At: 40 * time.Second, Site: 0, Kind: Recover},
			{At: 50 * time.Second, Site: 1, Worker: 2, Kind: Partition},
		},
		RestartAfter:    10 * time.Second,
		CheckpointEvery: 30 * time.Second,
		LeaseTTL:        5 * time.Second,
		SpeculateAfter:  20 * time.Second,
	}
	got, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", p.String(), err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestParsePlanCommentsAndSorting(t *testing.T) {
	p, err := ParsePlan("# a drill\nat=30s site=1 kind=crash\n\nat=10s site=0 kind=crash\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 || p.Events[0].At != 10*time.Second {
		t.Fatalf("events not sorted by At: %+v", p.Events)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{At: -time.Second, Kind: Crash}}},
		{Events: []Event{{At: 0, Site: -1, Kind: Crash}}},
		{Events: []Event{{At: 0, Kind: Slowdown, Factor: 1}}},
		{Events: []Event{{At: 0, Kind: Kind(99)}}},
		{Events: []Event{{At: time.Second, Kind: Crash}, {At: 0, Kind: Crash}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: Validate() = nil, want error", i)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan: %v", err)
	}
}

func TestPlanActive(t *testing.T) {
	if (Plan{}).Active() {
		t.Error("zero plan reports active")
	}
	if !(Plan{CheckpointEvery: time.Second}).Active() {
		t.Error("checkpointing plan reports inactive")
	}
	if !(Plan{Events: []Event{{Kind: Crash}}}).Active() {
		t.Error("plan with events reports inactive")
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(7, 5, time.Minute, []int{0, 1})
	b := RandomPlan(7, 5, time.Minute, []int{0, 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := RandomPlan(8, 5, time.Minute, []int{0, 1})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range a.Events {
		if e.At < 0 || e.At >= time.Minute {
			t.Fatalf("event outside horizon: %+v", e)
		}
	}
}

func TestLeases(t *testing.T) {
	l := NewLeases(5 * time.Second)
	l.Renew(0, 0)
	l.Renew(1, 0)
	if got := l.Expired(4 * time.Second); got != nil {
		t.Fatalf("Expired(4s) = %v, want none", got)
	}
	l.Renew(1, 4*time.Second)
	if got := l.Expired(6 * time.Second); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Expired(6s) = %v, want [0]", got)
	}
	if !l.MarkDead(0) {
		t.Fatal("first MarkDead returned false")
	}
	if l.MarkDead(0) {
		t.Fatal("second MarkDead returned true")
	}
	// A dead site's renewals are ignored until Revive.
	l.Renew(0, 7*time.Second)
	if got := l.Expired(100 * time.Second); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Expired(100s) = %v, want [1] (site 0 dead)", got)
	}
	l.Revive(0, 10*time.Second)
	if l.Dead(0) {
		t.Fatal("site 0 still dead after Revive")
	}
	if got := l.Expired(12 * time.Second); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Expired(12s) = %v, want [1]", got)
	}
}

func TestLeasesDisabled(t *testing.T) {
	l := NewLeases(0)
	l.Renew(0, 0)
	if got := l.Expired(time.Hour); got != nil {
		t.Fatalf("disabled leases expired %v", got)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := Checkpoint{
		Site:      1,
		Seq:       7,
		Object:    []byte("encoded reduction object"),
		Completed: []int{0, 3, 4, 5, 900},
	}
	got, err := DecodeCheckpoint(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
	// Empty completed list and empty object.
	c2 := Checkpoint{Site: 0, Seq: 1, Object: []byte{}, Completed: []int{}}
	got2, err := DecodeCheckpoint(c2.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got2.Site != 0 || got2.Seq != 1 || len(got2.Object) != 0 || len(got2.Completed) != 0 {
		t.Fatalf("empty round trip mismatch: %+v", got2)
	}
}

func TestCheckpointDecodeErrors(t *testing.T) {
	if _, err := DecodeCheckpoint(nil); err == nil {
		t.Error("nil blob decoded")
	}
	if _, err := DecodeCheckpoint(make([]byte, 20)); err == nil {
		t.Error("zero magic decoded")
	}
	good := Checkpoint{Site: 1, Seq: 1, Object: []byte("x"), Completed: []int{1, 2}}.Encode()
	if _, err := DecodeCheckpoint(good[:len(good)-1]); err == nil {
		t.Error("truncated blob decoded")
	}
}

func TestCheckpointKey(t *testing.T) {
	if got := Key("ckpt", 3); got != "ckpt/site-3" {
		t.Fatalf("Key = %q", got)
	}
	if got := Key("", 0); got != "ckpt/site-0" {
		t.Fatalf("Key with empty prefix = %q", got)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Get("missing"); !IsPermanent(err) {
		t.Fatalf("missing key error not permanent: %v", err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestBackoffCappedExponentialDeterministic(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 42}
	prevFull := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := b.Delay(attempt)
		full := min64(10*time.Millisecond<<(attempt-1), 80*time.Millisecond)
		if d < full/2 || d > full {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
		}
		if full < prevFull {
			t.Errorf("attempt %d: envelope shrank", attempt)
		}
		prevFull = full
		if d2 := b.Delay(attempt); d2 != d {
			t.Errorf("attempt %d: nondeterministic delay %v vs %v", attempt, d, d2)
		}
	}
	// Different seeds give different jitter somewhere in the ladder.
	b2 := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 43}
	same := true
	for attempt := 1; attempt <= 8; attempt++ {
		if b.Delay(attempt) != b2.Delay(attempt) {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical jitter ladders")
	}
}

func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	if d := b.Delay(1); d < DefaultBackoffBase/2 || d > DefaultBackoffBase {
		t.Fatalf("zero-value first delay %v outside [%v, %v]", d, DefaultBackoffBase/2, DefaultBackoffBase)
	}
	if d := b.Delay(1000); d > DefaultBackoffCap {
		t.Fatalf("zero-value delay %v exceeds cap %v", d, DefaultBackoffCap)
	}
}

func min64(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func TestIsPermanent(t *testing.T) {
	base := errors.New("no such object")
	if IsPermanent(base) {
		t.Error("plain error reported permanent")
	}
	p := AsPermanent(base)
	if !IsPermanent(p) {
		t.Error("AsPermanent error not detected")
	}
	wrapped := fmt.Errorf("fetch: %w", p)
	if !IsPermanent(wrapped) {
		t.Error("wrapped permanent error not detected")
	}
	if !errors.Is(wrapped, base) {
		t.Error("AsPermanent broke errors.Is chain")
	}
	if AsPermanent(nil) != nil {
		t.Error("AsPermanent(nil) != nil")
	}
}
