package fault

import "time"

// Backoff computes capped exponential retry delays with deterministic,
// seedable "equal jitter": attempt k (1-based) sleeps
//
//	d = min(Base << (k-1), Cap);  sleep = d/2 + jitter·d/2
//
// where jitter ∈ [0, 1) comes from a splitmix64 stream keyed by (Seed,
// attempt), so two runs with the same seed back off identically — the
// property the simulator and the deterministic e2e tests rely on — while
// different seeds decorrelate retry storms across workers.
//
// The zero value is usable and gives the package defaults: Base 50 ms,
// Cap 2 s, Seed 0.
type Backoff struct {
	// Base is the first attempt's full delay; 0 means 50 ms.
	Base time.Duration
	// Cap bounds the exponential growth; 0 means 2 s.
	Cap time.Duration
	// Seed keys the jitter stream; the zero seed is a valid stream.
	Seed uint64
}

// Defaults for the zero value.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
)

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return DefaultBackoffBase
}

func (b Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return DefaultBackoffCap
}

// Delay returns the sleep before retry number attempt (1-based). Attempts
// below 1 are treated as 1.
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.base()
	cap := b.cap()
	for i := 1; i < attempt; i++ {
		d <<= 1
		if d >= cap || d <= 0 { // d <= 0 guards shift overflow
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	h := splitmix64(b.Seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
	jitter := float64(h>>11) / float64(1<<53) // [0, 1)
	half := d / 2
	return half + time.Duration(jitter*float64(half))
}
