// Package fault is the framework's fault-tolerance and straggler-resilience
// subsystem. It provides the pieces the head node, the cluster runtime and
// the discrete-event simulator share to survive worker crashes, network
// partitions and slow nodes:
//
//   - Plan — a deterministic, seedable fault-injection schedule (crash,
//     partition, slowdown×f, recover events) with a text round-trip format,
//     driven by the wall clock in live runs and the virtual clock in
//     internal/hybridsim.
//   - Leases — per-site liveness leases renewed by heartbeats; a missed
//     deadline returns the site's in-flight jobs to the global pool.
//   - Checkpoint — the FREERIDE-G-style reduction-object checkpoint: the
//     cluster's merged reduction object plus the bitmap of jobs it covers,
//     persisted through a Store (the object store in deployments) so a
//     restarted worker resumes instead of reprocessing its history.
//   - Backoff — capped exponential retry backoff with deterministic,
//     seedable jitter, shared by retrieval retries and reconnect loops.
//   - Injector — a chunk.Source wrapper that injects failures on a
//     deterministic schedule, for tests and live fault drills.
//
// The invariant every piece defends is pool conservation: each job's
// contribution reaches the final reduction object exactly once, no matter
// how many times the job was assigned, re-executed speculatively, or lost
// and recovered. Duplicate completions are deduplicated by job ID at the
// pool; contributions lost with a crashed worker are re-issued from the
// last checkpoint boundary.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates fault-plan event types.
type Kind int

const (
	// Crash kills the target cluster: its in-flight jobs return to the
	// pool, un-checkpointed completions are re-issued, and the cluster
	// restarts from its last checkpoint after Plan.RestartAfter.
	Crash Kind = iota
	// Partition cuts the target cluster off from the head and the storage
	// sites until the matching Recover event: no new fetches or job
	// requests; completions are committed when the partition heals (and
	// deduplicated if the head re-assigned them in the meantime).
	Partition
	// Slowdown divides the target cluster's compute speed by Factor until
	// the matching Recover event (a straggler).
	Slowdown
	// Recover ends an active Partition or Slowdown on the target cluster.
	Recover
)

// String returns the plan-format keyword for k.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Partition:
		return "partition"
	case Slowdown:
		return "slowdown"
	case Recover:
		return "recover"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "crash":
		return Crash, nil
	case "partition":
		return Partition, nil
	case "slowdown":
		return Slowdown, nil
	case "recover":
		return Recover, nil
	}
	return 0, fmt.Errorf("fault: unknown event kind %q", s)
}

// Event is one scheduled fault. The zero Worker targets the whole cluster;
// live deployments may address a single worker thread (1-based) where that
// granularity exists.
type Event struct {
	// At is the injection instant: virtual time in the simulator, time
	// since run start in live mode.
	At time.Duration
	// Site identifies the target cluster by its storage site ID (the same
	// key the job pool and the placement use).
	Site int
	// Worker optionally narrows the fault to one worker thread; 0 targets
	// the whole cluster.
	Worker int
	// Kind is the fault type.
	Kind Kind
	// Factor is the slowdown multiplier for Kind == Slowdown (compute rate
	// is divided by Factor; must be > 1).
	Factor float64
}

// String renders the event in plan format, e.g. "at=30s site=1 kind=crash".
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "at=%s site=%d kind=%s", e.At, e.Site, e.Kind)
	if e.Worker != 0 {
		fmt.Fprintf(&b, " worker=%d", e.Worker)
	}
	if e.Kind == Slowdown {
		fmt.Fprintf(&b, " factor=%g", e.Factor)
	}
	return b.String()
}

// Plan is a deterministic fault-injection schedule plus the recovery
// parameters that govern how the system reacts. The zero value is an
// inactive plan: no events, no checkpointing, no leases.
type Plan struct {
	// Events lists the scheduled faults; Validate requires ascending At.
	Events []Event
	// RestartAfter is the crash-to-restart delay (how long a replacement
	// worker takes to boot); 0 means the DefaultRestartAfter.
	RestartAfter time.Duration
	// CheckpointEvery is the reduction-object checkpoint cadence on the
	// run's clock; 0 disables checkpointing.
	CheckpointEvery time.Duration
	// LeaseTTL is the per-site liveness lease: a site silent for longer is
	// declared failed and its in-flight jobs are requeued. 0 disables
	// lease expiry (crashes are then only detected by explicit events).
	LeaseTTL time.Duration
	// SpeculateAfter re-adds a straggler's outstanding jobs to the pool as
	// speculative copies once the pool has been empty-but-undrained for
	// this long; 0 disables speculative re-execution.
	SpeculateAfter time.Duration
	// StragglerFactor tunes the latency watchdog that runs alongside
	// speculation: a site is flagged as a straggler when its p99
	// grant-to-commit job latency exceeds this multiple of the cluster-wide
	// median. 0 means DefaultStragglerFactor; negative disables the
	// watchdog. The watchdog is only armed when SpeculateAfter > 0.
	// Mirrors config.Tuning.StragglerFactor for the live head.
	StragglerFactor float64
	// WatchdogMinSamples is the minimum number of completed jobs a site
	// must have before the latency watchdog will judge it; 0 or negative
	// means DefaultWatchdogMinSamples. Mirrors
	// config.Tuning.WatchdogMinSamples for the live head.
	WatchdogMinSamples int
}

// DefaultRestartAfter is the crash-to-restart delay when the plan does not
// specify one.
const DefaultRestartAfter = 10 * time.Second

// DefaultStragglerFactor and DefaultWatchdogMinSamples are the latency
// watchdog defaults; they deliberately match the config package's values so
// simulated and live runs judge stragglers the same way.
const (
	DefaultStragglerFactor    = 3.0
	DefaultWatchdogMinSamples = 4
)

// EffectiveStragglerFactor resolves StragglerFactor: 0 becomes the default,
// negative values report 0 (watchdog off).
func (p Plan) EffectiveStragglerFactor() float64 {
	if p.StragglerFactor < 0 {
		return 0
	}
	if p.StragglerFactor == 0 {
		return DefaultStragglerFactor
	}
	return p.StragglerFactor
}

// EffectiveWatchdogMinSamples resolves WatchdogMinSamples, applying the
// default when unset.
func (p Plan) EffectiveWatchdogMinSamples() int {
	if p.WatchdogMinSamples <= 0 {
		return DefaultWatchdogMinSamples
	}
	return p.WatchdogMinSamples
}

// Active reports whether the plan changes anything at all: any events or
// any recovery machinery (checkpointing, leases, speculation) enabled.
func (p Plan) Active() bool {
	return len(p.Events) > 0 || p.CheckpointEvery > 0 || p.LeaseTTL > 0 || p.SpeculateAfter > 0
}

// Restart returns the crash-to-restart delay, applying the default.
func (p Plan) Restart() time.Duration {
	if p.RestartAfter > 0 {
		return p.RestartAfter
	}
	return DefaultRestartAfter
}

// Validate checks event ordering and per-event parameters.
func (p Plan) Validate() error {
	last := time.Duration(-1 << 62)
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d at negative time %v", i, e.At)
		}
		if e.At < last {
			return fmt.Errorf("fault: event %d at %v out of order (previous %v)", i, e.At, last)
		}
		last = e.At
		if e.Site < 0 {
			return fmt.Errorf("fault: event %d targets negative site %d", i, e.Site)
		}
		if e.Kind == Slowdown && e.Factor <= 1 {
			return fmt.Errorf("fault: event %d slowdown factor %g must be > 1", i, e.Factor)
		}
		switch e.Kind {
		case Crash, Partition, Slowdown, Recover:
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// EventsFor returns the events targeting site, in schedule order.
func (p Plan) EventsFor(site int) []Event {
	var out []Event
	for _, e := range p.Events {
		if e.Site == site {
			out = append(out, e)
		}
	}
	return out
}

// String renders the plan in its text format (one event per line, with a
// header line for non-default parameters). Parse reverses it.
func (p Plan) String() string {
	var b strings.Builder
	var hdr []string
	if p.RestartAfter > 0 {
		hdr = append(hdr, "restart="+p.RestartAfter.String())
	}
	if p.CheckpointEvery > 0 {
		hdr = append(hdr, "checkpoint="+p.CheckpointEvery.String())
	}
	if p.LeaseTTL > 0 {
		hdr = append(hdr, "lease="+p.LeaseTTL.String())
	}
	if p.SpeculateAfter > 0 {
		hdr = append(hdr, "speculate="+p.SpeculateAfter.String())
	}
	if len(hdr) > 0 {
		b.WriteString("plan " + strings.Join(hdr, " ") + "\n")
	}
	for _, e := range p.Events {
		b.WriteString(e.String() + "\n")
	}
	return b.String()
}

// ParsePlan parses the text plan format: an optional leading
// "plan restart=10s checkpoint=30s lease=5s speculate=20s" parameter line,
// then one event per line like "at=30s site=1 kind=crash" or
// "at=40s site=0 kind=slowdown factor=4". Blank lines and lines starting
// with '#' are ignored.
func ParsePlan(text string) (Plan, error) {
	var p Plan
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "plan" {
			for _, f := range fields[1:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return Plan{}, fmt.Errorf("fault: line %d: bad parameter %q", ln+1, f)
				}
				d, err := time.ParseDuration(v)
				if err != nil {
					return Plan{}, fmt.Errorf("fault: line %d: %s: %v", ln+1, k, err)
				}
				switch k {
				case "restart":
					p.RestartAfter = d
				case "checkpoint":
					p.CheckpointEvery = d
				case "lease":
					p.LeaseTTL = d
				case "speculate":
					p.SpeculateAfter = d
				default:
					return Plan{}, fmt.Errorf("fault: line %d: unknown parameter %q", ln+1, k)
				}
			}
			continue
		}
		var e Event
		for _, f := range fields {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return Plan{}, fmt.Errorf("fault: line %d: bad field %q", ln+1, f)
			}
			var err error
			switch k {
			case "at":
				e.At, err = time.ParseDuration(v)
			case "site":
				e.Site, err = strconv.Atoi(v)
			case "worker":
				e.Worker, err = strconv.Atoi(v)
			case "kind":
				e.Kind, err = parseKind(v)
			case "factor":
				e.Factor, err = strconv.ParseFloat(v, 64)
			default:
				err = fmt.Errorf("unknown field %q", k)
			}
			if err != nil {
				return Plan{}, fmt.Errorf("fault: line %d: %v", ln+1, err)
			}
		}
		p.Events = append(p.Events, e)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// splitmix64 is the deterministic pseudo-random stream used for jitter and
// seeded schedules (same generator the simulator uses for compute jitter).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RandomPlan derives a deterministic plan of n crash events from seed,
// spread uniformly over (0, horizon) across the given sites — the seedable
// schedule generator used by property tests and fault drills. The same
// (seed, n, horizon, sites) always yields the same plan.
func RandomPlan(seed uint64, n int, horizon time.Duration, sites []int) Plan {
	if n <= 0 || horizon <= 0 || len(sites) == 0 {
		return Plan{}
	}
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		h := splitmix64(seed + uint64(i)*0x9e3779b97f4a7c15)
		at := time.Duration(float64(horizon) * (float64(h>>11) / float64(1<<53)))
		site := sites[int(splitmix64(h)%uint64(len(sites)))]
		events = append(events, Event{At: at, Site: site, Kind: Crash})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return Plan{Events: events}
}

// ---------------------------------------------------------------------------
// Error classification.

// fencedMarker is the substring IsFenced matches on. It must appear in every
// fencing rejection so the classification survives transports that flatten
// errors to strings (protocol.ErrorReply).
const fencedMarker = "site fenced"

// ErrFenced is returned by the head to an incarnation it has declared failed
// (lease expiry, connection loss): its job requests, commits, checkpoints and
// result submissions are refused so a dead-marked-but-alive straggler cannot
// double-count contributions the head already reissued elsewhere. The fenced
// master must re-register (Hello) to revive its lease and resume from its
// last checkpoint.
var ErrFenced = errors.New(fencedMarker + ": lease revoked; re-register to resume from the last checkpoint")

// IsFenced reports whether err is a fencing rejection, either directly
// (errors.Is) or after a transport round-trip reduced it to its message.
func IsFenced(err error) bool {
	return err != nil && (errors.Is(err, ErrFenced) || strings.Contains(err.Error(), fencedMarker))
}

// PermanentError marks errors that retrying cannot fix (missing objects,
// out-of-range reads, malformed requests). Retry loops consult IsPermanent
// to stop burning attempts on hopeless fetches.
type PermanentError interface {
	error
	Permanent() bool
}

// IsPermanent reports whether any error in err's chain declares itself
// permanent via the PermanentError interface.
func IsPermanent(err error) bool {
	var pe PermanentError
	return errors.As(err, &pe) && pe.Permanent()
}

// permanent wraps an error to mark it permanent.
type permanent struct{ err error }

func (p permanent) Error() string   { return p.err.Error() }
func (p permanent) Unwrap() error   { return p.err }
func (p permanent) Permanent() bool { return true }

// AsPermanent marks err permanent (nil stays nil).
func AsPermanent(err error) error {
	if err == nil {
		return nil
	}
	return permanent{err: err}
}
