package netem

import (
	"net"
	"time"
)

// nopConn is a minimal net.Conn for wrapper tests and benchmarks.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)         { return 0, nil }
func (nopConn) Write(p []byte) (int, error)        { return len(p), nil }
func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (nopConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (nopConn) SetDeadline(t time.Time) error      { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }
