package netem

import (
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Bucket deterministically.
type fakeClock struct {
	mu  sync.Mutex
	t   time.Time
	nap time.Duration // total requested sleep
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.nap += d
	c.mu.Unlock()
}

func newTestBucket(rate, burst float64) (*Bucket, *fakeClock) {
	b := NewBucket(rate, burst)
	clk := &fakeClock{t: time.Unix(0, 0)}
	b.now = clk.now
	b.sleep = clk.sleep
	b.last = clk.t
	return b, clk
}

func TestBucketPacesToRate(t *testing.T) {
	b, clk := newTestBucket(1000, 100) // 1000 B/s, 100 B burst
	b.Wait(100)                        // consumes the initial burst instantly
	if clk.nap != 0 {
		t.Fatalf("burst should be free, slept %v", clk.nap)
	}
	b.Wait(500) // needs 0.5 s at 1000 B/s
	if got, want := clk.nap, 500*time.Millisecond; got < want || got > want+50*time.Millisecond {
		t.Errorf("slept %v, want ≈%v", got, want)
	}
}

func TestBucketLargeRequestInstallments(t *testing.T) {
	b, clk := newTestBucket(1000, 10)
	b.Wait(1000) // 100× burst; must not deadlock
	if clk.nap < 900*time.Millisecond {
		t.Errorf("1000 bytes at 1000 B/s slept only %v", clk.nap)
	}
}

func TestBucketUnlimited(t *testing.T) {
	var b *Bucket
	b.Wait(1 << 30) // nil bucket: no-op
	b2 := NewBucket(0, 0)
	done := make(chan struct{})
	go func() { b2.Wait(1 << 30); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("zero-rate bucket blocked")
	}
}

func TestBucketRefillCap(t *testing.T) {
	b, clk := newTestBucket(1000, 50)
	clk.sleep(10 * time.Second) // long idle must not bank >burst tokens
	clk.nap = 0
	b.Wait(50)
	if clk.nap != 0 {
		t.Errorf("burst after idle slept %v", clk.nap)
	}
	b.Wait(50)
	if clk.nap < 40*time.Millisecond {
		t.Errorf("second burst slept only %v; bucket over-banked", clk.nap)
	}
}

func TestShaperThrottlesConnection(t *testing.T) {
	// 64 KiB through a 256 KiB/s link should take ≈250 ms.
	s := NewShaper(Link{BytesPerSec: 256 << 10, Burst: 4 << 10})
	client, server := net.Pipe()
	shaped := s.Wrap(client)
	const n = 64 << 10
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		buf := make([]byte, 8<<10)
		sent := 0
		for sent < n {
			m, err := shaped.Write(buf)
			if err != nil {
				t.Errorf("write: %v", err)
				break
			}
			sent += m
		}
		done <- time.Since(start)
	}()
	buf := make([]byte, 8<<10)
	got := 0
	for got < n {
		m, err := server.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got += m
	}
	elapsed := <-done
	if elapsed < 150*time.Millisecond {
		t.Errorf("64KiB over 256KiB/s link took %v, want ≥150ms", elapsed)
	}
	shaped.Close()
	server.Close()
}

func TestShaperLatency(t *testing.T) {
	s := NewShaper(Link{Latency: 30 * time.Millisecond})
	client, server := net.Pipe()
	shaped := s.Wrap(client)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := shaped.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("first write took %v, want ≥25ms latency", elapsed)
	}
	// An immediately-following write is part of the same burst: no new delay.
	start = time.Now()
	if _, err := shaped.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("burst-continuation write took %v, want ≈0", elapsed)
	}
	shaped.Close()
	server.Close()
}

func TestNilShaperPassThrough(t *testing.T) {
	var s *Shaper
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	if got := s.Wrap(client); got != client {
		t.Error("nil shaper should return the conn unchanged")
	}
}

func TestListener(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Listener{Listener: inner, Shaper: NewShaper(Link{})}
	defer l.Close()
	go func() {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
	}()
	c, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 2)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hi" {
		t.Errorf("read %q", buf)
	}
}
