package netem

import "testing"

// Token-bucket overhead: Wait sits on every shaped Write, so its fast path
// (tokens available) must be cheap.

func BenchmarkBucketFastPath(b *testing.B) {
	bucket := NewBucket(1e12, 1e12) // never blocks
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bucket.Wait(1500)
	}
}

func BenchmarkBucketContended(b *testing.B) {
	bucket := NewBucket(1e12, 1e12)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bucket.Wait(1500)
		}
	})
}

func BenchmarkShaperWrapOverhead(b *testing.B) {
	s := NewShaper(Link{}) // no constraints: measures wrapper cost only
	c := s.Wrap(discardConn{})
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// discardConn is a net.Conn whose writes vanish.
type discardConn struct{ nopConn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }
