// Package netem emulates wide-area network conditions on top of real
// connections: propagation latency and bandwidth limits, so a single-host
// deployment exhibits the cluster↔cloud asymmetry the paper's testbed had
// (Infiniband inside the cluster, a constrained WAN path to S3 and between
// clusters).
//
// The model is sender-side: each Write is delayed by the one-way latency
// (once per burst) and paced by a token bucket at the link rate. For the
// request/response traffic the middleware generates, sender-side delay is
// indistinguishable from in-flight delay when measuring elapsed time, which
// is what the experiments report.
package netem

import (
	"net"
	"sync"
	"time"
)

// Bucket is a token bucket: Wait(n) blocks until n tokens (bytes) are
// available at the configured rate. Safe for concurrent use; concurrent
// waiters share the link fairly in FIFO order of lock acquisition.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	// now/sleep are indirected for tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// NewBucket returns a bucket producing rate tokens/second with the given
// burst capacity. A rate ≤ 0 means unlimited.
func NewBucket(rate float64, burst float64) *Bucket {
	if burst <= 0 {
		burst = rate / 10
	}
	if burst <= 0 {
		burst = 1
	}
	b := &Bucket{rate: rate, burst: burst, tokens: burst, now: time.Now, sleep: time.Sleep}
	b.last = b.now()
	return b
}

// Wait blocks until n tokens are available and consumes them. Requests
// larger than the burst size are admitted in burst-sized installments so a
// huge write cannot deadlock.
func (b *Bucket) Wait(n int) {
	if b == nil || b.rate <= 0 || n <= 0 {
		return
	}
	remaining := float64(n)
	for remaining > 0 {
		take := remaining
		if take > b.burst {
			take = b.burst
		}
		b.waitFor(take)
		remaining -= take
	}
}

func (b *Bucket) waitFor(n float64) {
	for {
		b.mu.Lock()
		now := b.now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		if b.tokens >= n {
			b.tokens -= n
			b.mu.Unlock()
			return
		}
		need := (n - b.tokens) / b.rate
		b.mu.Unlock()
		b.sleep(time.Duration(need * float64(time.Second)))
	}
}

// Rate reports the configured token rate.
func (b *Bucket) Rate() float64 { return b.rate }

// Link describes one emulated network path.
type Link struct {
	// Latency is the one-way propagation delay added to each write burst.
	Latency time.Duration
	// BytesPerSec caps throughput; 0 means unlimited.
	BytesPerSec float64
	// Burst is the token-bucket capacity in bytes; 0 picks a default.
	Burst float64
}

// Shaper applies a Link's constraints to connections. All connections
// wrapped by the same Shaper share one token bucket, modelling a shared
// physical path (e.g. the site's WAN uplink carrying all retrieval threads).
type Shaper struct {
	link   Link
	bucket *Bucket
}

// NewShaper builds a shaper for the link.
func NewShaper(link Link) *Shaper {
	var b *Bucket
	if link.BytesPerSec > 0 {
		b = NewBucket(link.BytesPerSec, link.Burst)
	}
	return &Shaper{link: link, bucket: b}
}

// Wrap returns a net.Conn whose writes are subject to the link's latency
// and bandwidth.
func (s *Shaper) Wrap(c net.Conn) net.Conn {
	if s == nil {
		return c
	}
	return &shapedConn{Conn: c, shaper: s}
}

// Link returns the shaper's configuration.
func (s *Shaper) Link() Link { return s.link }

type shapedConn struct {
	net.Conn
	shaper *Shaper

	mu        sync.Mutex
	lastWrite time.Time
}

// Write paces p through the shared bucket, charging the one-way latency
// when the connection has been idle (a new burst), matching how an RTT is
// paid once per request rather than once per segment.
func (c *shapedConn) Write(p []byte) (int, error) {
	s := c.shaper
	if s.link.Latency > 0 {
		c.mu.Lock()
		idle := c.lastWrite.IsZero() || time.Since(c.lastWrite) > s.link.Latency
		c.mu.Unlock()
		if idle {
			time.Sleep(s.link.Latency)
		}
	}
	s.bucket.Wait(len(p))
	n, err := c.Conn.Write(p)
	if s.link.Latency > 0 {
		c.mu.Lock()
		c.lastWrite = time.Now()
		c.mu.Unlock()
	}
	return n, err
}

// Listener wraps every accepted connection with the shaper.
type Listener struct {
	net.Listener
	Shaper *Shaper
}

// Accept waits for the next connection and shapes it.
func (l Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.Shaper.Wrap(c), nil
}
