package objstore

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/protocol"
)

func TestClientErrorClassification(t *testing.T) {
	backend := NewMemBackend()
	if err := backend.Put("obj", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, backend)
	c := Dial("tcp", addr, 2)
	defer c.Close()

	t.Run("not found is permanent", func(t *testing.T) {
		_, err := c.GetRange("missing", 0, -1)
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Fatalf("error %T, want *OpError", err)
		}
		if oe.Code != protocol.CodeNotFound || !oe.Permanent() {
			t.Fatalf("code=%d permanent=%v, want not-found/permanent", oe.Code, oe.Permanent())
		}
		if !errors.Is(err, ErrNotFound) {
			t.Fatal("errors.Is(err, ErrNotFound) = false across the wire")
		}
		if !fault.IsPermanent(err) {
			t.Fatal("fault.IsPermanent = false for missing object")
		}
	})

	t.Run("bad range is permanent", func(t *testing.T) {
		_, err := c.GetRange("obj", 5, 100)
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Fatalf("error %T, want *OpError", err)
		}
		if oe.Code != protocol.CodeBadRange || !oe.Permanent() {
			t.Fatalf("code=%d permanent=%v, want bad-range/permanent", oe.Code, oe.Permanent())
		}
		if !errors.Is(err, ErrBadRange) {
			t.Fatal("errors.Is(err, ErrBadRange) = false across the wire")
		}
		if !fault.IsPermanent(err) {
			t.Fatal("fault.IsPermanent = false for bad range")
		}
	})

	t.Run("stat missing is permanent", func(t *testing.T) {
		_, err := c.Stat("missing")
		if !fault.IsPermanent(err) {
			t.Fatalf("Stat error not permanent: %v", err)
		}
	})

	t.Run("dropped connection is transient", func(t *testing.T) {
		dead := Dial("tcp", "127.0.0.1:1", 1) // nothing listens here
		defer dead.Close()
		_, err := dead.GetRange("obj", 0, -1)
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Fatalf("error %T, want *OpError", err)
		}
		if oe.Code != protocol.CodeTransient || oe.Permanent() {
			t.Fatalf("code=%d permanent=%v, want transient", oe.Code, oe.Permanent())
		}
		if fault.IsPermanent(err) {
			t.Fatal("fault.IsPermanent = true for connection failure")
		}
	})

	t.Run("get helper fetches whole object", func(t *testing.T) {
		data, err := c.Get("obj")
		if err != nil || string(data) != "0123456789" {
			t.Fatalf("Get = %q, %v", data, err)
		}
	})
}

// shortBackend returns fewer bytes than requested, simulating a truncated
// range response.
type shortBackend struct{ Backend }

func (b shortBackend) Get(key string, off, length int64) ([]byte, error) {
	data, err := b.Backend.Get(key, off, length)
	if err != nil || len(data) == 0 {
		return data, err
	}
	return data[:len(data)-1], nil
}

func TestShortRangeReadIsTransient(t *testing.T) {
	backend := NewMemBackend()
	if err := backend.Put("obj", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, shortBackend{backend})
	c := Dial("tcp", addr, 1)
	defer c.Close()
	_, err := c.GetRange("obj", 0, 10)
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("error %T (%v), want *OpError", err, err)
	}
	if oe.Code != protocol.CodeTransient || oe.Permanent() {
		t.Fatalf("short read: code=%d permanent=%v, want transient", oe.Code, oe.Permanent())
	}
}

// fault.Store compatibility: the objstore client persists checkpoints.
var _ fault.Store = (*Client)(nil)
