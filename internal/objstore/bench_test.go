package objstore

import (
	"net"
	"testing"
)

// Data-path benchmarks: range-GET throughput through the real server and
// client over loopback sockets, single-stream and pooled.

func benchStore(b *testing.B, objBytes int) (*Client, string) {
	b.Helper()
	backend := NewMemBackend()
	payload := make([]byte, objBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := backend.Put("obj", payload); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(backend)
	srv.Logf = nil
	go srv.Serve(l)
	b.Cleanup(func() { srv.Close() })
	c := Dial("tcp", l.Addr().String(), 8)
	b.Cleanup(c.Close)
	return c, "obj"
}

func BenchmarkGetRange64K(b *testing.B) {
	c, key := benchStore(b, 1<<20)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetRange(key, int64(i%16)*(64<<10), 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetRange1M(b *testing.B) {
	c, key := benchStore(b, 1<<20)
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetRange(key, 0, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetRangeParallel(b *testing.B) {
	c, key := benchStore(b, 1<<20)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.GetRange(key, int64(i%16)*(64<<10), 64<<10); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkMemBackendGet(b *testing.B) {
	backend := NewMemBackend()
	if err := backend.Put("k", make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Get("k", 0, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}
