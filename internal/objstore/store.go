// Package objstore is the repository's stand-in for Amazon S3: a simple
// object store holding a dataset's files, addressable by key with byte-range
// GETs, served over the framework transport. Combined with internal/netem
// shaping it reproduces the bandwidth-constrained remote-retrieval path that
// dominates the paper's data-intensive experiments.
package objstore

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("objstore: key not found")

// Backend stores object bytes. Implementations must be safe for concurrent
// use.
type Backend interface {
	// Put stores data under key. Implementations must not retain data after
	// returning: the server recycles the receive buffer.
	Put(key string, data []byte) error
	// Get returns length bytes starting at off; length < 0 means to the end.
	Get(key string, off, length int64) ([]byte, error)
	Stat(key string) (int64, error)
	List(prefix string) ([]string, error)
}

// Slicer is an optional Backend fast path: GetSlice returns a slice ALIASING
// the backend's storage — zero copies between the stored object and the
// socket. The server sends such slices directly and never writes to or
// pools them. Implementations must guarantee the returned slice stays valid
// and immutable even if the key is overwritten concurrently (MemBackend
// does: Put installs a fresh copy, leaving old slices intact for readers).
type Slicer interface {
	GetSlice(key string, off, length int64) ([]byte, error)
}

// Pooler is an optional Backend marker: Get returns buffers drawn from
// bufpool that the server returns to the pool after the reply is flushed.
type Pooler interface {
	PooledGet()
}

// MemBackend keeps objects in memory.
type MemBackend struct {
	mu   sync.RWMutex
	objs map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{objs: make(map[string][]byte)}
}

// Put implements Backend.
func (b *MemBackend) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	b.objs[key] = cp
	b.mu.Unlock()
	return nil
}

// Get implements Backend.
func (b *MemBackend) Get(key string, off, length int64) ([]byte, error) {
	b.mu.RLock()
	data, ok := b.objs[key]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return slice(data, off, length, key)
}

// GetSlice implements Slicer: the returned range aliases the stored object,
// so range GETs are served with zero copies. Safe under concurrent Put —
// Put installs a fresh buffer and never mutates the old one, which stays
// alive for any reader still holding it.
func (b *MemBackend) GetSlice(key string, off, length int64) ([]byte, error) {
	b.mu.RLock()
	data, ok := b.objs[key]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if off < 0 || off > int64(len(data)) {
		return nil, fmt.Errorf("%w: offset %d for %q (%d bytes)", ErrBadRange, off, key, len(data))
	}
	end := int64(len(data))
	if length >= 0 {
		end = off + length
		if end > int64(len(data)) {
			return nil, fmt.Errorf("%w: %d+%d beyond %q (%d bytes)", ErrBadRange, off, length, key, len(data))
		}
	}
	return data[off:end:end], nil
}

// Stat implements Backend.
func (b *MemBackend) Stat(key string) (int64, error) {
	b.mu.RLock()
	data, ok := b.objs[key]
	b.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return int64(len(data)), nil
}

// List implements Backend.
func (b *MemBackend) List(prefix string) ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var keys []string
	for k := range b.objs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func slice(data []byte, off, length int64, key string) ([]byte, error) {
	if off < 0 || off > int64(len(data)) {
		return nil, fmt.Errorf("%w: offset %d for %q (%d bytes)", ErrBadRange, off, key, len(data))
	}
	end := int64(len(data))
	if length >= 0 {
		end = off + length
		if end > int64(len(data)) {
			return nil, fmt.Errorf("%w: %d+%d beyond %q (%d bytes)", ErrBadRange, off, length, key, len(data))
		}
	}
	out := make([]byte, end-off)
	copy(out, data[off:end])
	return out, nil
}

// DirBackend stores each object as a file under a root directory. Keys may
// not escape the root.
type DirBackend struct{ Root string }

func (b DirBackend) path(key string) (string, error) {
	clean := filepath.Clean("/" + key)
	return filepath.Join(b.Root, clean), nil
}

// Put implements Backend.
func (b DirBackend) Put(key string, data []byte) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, data, 0o644)
}

// Get implements Backend.
func (b DirBackend) Get(key string, off, length int64) ([]byte, error) {
	p, err := b.path(key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return nil, err
	}
	defer f.Close()
	if length < 0 {
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		length = fi.Size() - off
	}
	// Pooled read buffer: the server returns it to bufpool once the reply
	// has been flushed (DirBackend implements Pooler). Other callers simply
	// let the GC take it.
	buf := bufpool.Get(int(length))
	if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
		bufpool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// PooledGet marks DirBackend.Get buffers as pool-returnable (Pooler).
func (DirBackend) PooledGet() {}

// Stat implements Backend.
func (b DirBackend) Stat(key string) (int64, error) {
	p, err := b.path(key)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return 0, err
	}
	return fi.Size(), nil
}

// List implements Backend.
func (b DirBackend) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.Walk(b.Root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(b.Root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// ---------------------------------------------------------------------------
// Server.

// Server serves a Backend over the framework transport.
type Server struct {
	backend Backend
	// Logf, when set, receives diagnostic messages; defaults to log.Printf.
	Logf func(format string, args ...any)
	// Obs, when non-nil, records request counters (objstore_get_total,
	// objstore_put_total, …), served-byte counters, per-request latency
	// histograms, and an error counter. Set before Serve.
	Obs *obs.Obs

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server for backend.
func NewServer(backend Backend) *Server {
	return &Server{backend: backend, Logf: log.Printf}
}

// metrics bundles the server's pre-resolved handles; all fields are nil-safe
// no-ops when s.Obs is nil.
type serverMetrics struct {
	clk               obs.Clock
	gets, puts, stats *obs.Counter
	lists, errs       *obs.Counter
	bytesOut, bytesIn *obs.Counter
	hGet, hPut        *obs.Histogram
	gConns            *obs.Gauge
}

func (s *Server) metrics() serverMetrics {
	reg := s.Obs.Metrics()
	return serverMetrics{
		clk:      s.Obs.ClockOrWall(),
		gets:     reg.Counter("objstore_get_total"),
		puts:     reg.Counter("objstore_put_total"),
		stats:    reg.Counter("objstore_stat_total"),
		lists:    reg.Counter("objstore_list_total"),
		errs:     reg.Counter("objstore_errors_total"),
		bytesOut: reg.Counter("objstore_bytes_served_total"),
		bytesIn:  reg.Counter("objstore_bytes_stored_total"),
		hGet:     reg.Histogram("objstore_get_seconds", nil),
		hPut:     reg.Histogram("objstore_put_seconds", nil),
		gConns:   reg.Gauge("objstore_open_conns"),
	}
}

// Serve accepts connections on l until Close. It blocks.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("objstore: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(transport.New(c))
		}()
	}
}

// Close stops accepting and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(c *transport.Conn) {
	defer c.Close()
	m0 := s.metrics()
	m0.gConns.Add(1)
	defer m0.gConns.Add(-1)
	slicer, _ := s.backend.(Slicer)
	_, pooled := s.backend.(Pooler)
	mirrored := false
	for {
		msg, err := c.Recv()
		if err != nil {
			return // connection closed
		}
		if !mirrored {
			// Reply in whatever codec the client sent (detected from the
			// connection preamble on the first Recv).
			c.UpgradeSend(c.RecvCodec())
			mirrored = true
		}
		// release, when non-nil, returns the reply's data buffer to bufpool
		// after the reply bytes have been flushed to the socket.
		var release []byte
		var reply protocol.Message
		switch m := msg.(type) {
		case protocol.PutReq:
			start := m0.clk.Now()
			resp := protocol.PutResp{}
			if err := s.backend.Put(m.Key, m.Data); err != nil {
				resp.Err = err.Error()
				resp.Code = classify(err)
				m0.errs.Inc()
			} else {
				m0.bytesIn.Add(int64(len(m.Data)))
			}
			// The backend copied (or wrote) the payload; the pooled receive
			// buffer can go back.
			bufpool.Put(m.Data)
			m0.puts.Inc()
			m0.hPut.Observe(m0.clk.Now() - start)
			reply = resp
		case protocol.GetReq:
			start := m0.clk.Now()
			var data []byte
			var err error
			if slicer != nil {
				// Zero-copy: the reply aliases the backend's storage and is
				// written straight to the socket.
				data, err = slicer.GetSlice(m.Key, m.Off, m.Len)
			} else {
				data, err = s.backend.Get(m.Key, m.Off, m.Len)
				if pooled {
					release = data
				}
			}
			resp := protocol.GetResp{Data: data}
			if err != nil {
				resp.Err = err.Error()
				resp.Code = classify(err)
				resp.Data = nil
				m0.errs.Inc()
			} else {
				m0.bytesOut.Add(int64(len(data)))
			}
			m0.gets.Inc()
			m0.hGet.Observe(m0.clk.Now() - start)
			reply = resp
		case protocol.StatReq:
			size, err := s.backend.Stat(m.Key)
			resp := protocol.StatResp{Size: size}
			if err != nil {
				resp.Err = err.Error()
				resp.Code = classify(err)
				m0.errs.Inc()
			}
			m0.stats.Inc()
			reply = resp
		case protocol.ListReq:
			keys, err := s.backend.List(m.Prefix)
			if err != nil {
				m0.errs.Inc()
				reply = protocol.ErrorReply{Err: err.Error()}
			} else {
				reply = protocol.ListResp{Keys: keys}
			}
			m0.lists.Inc()
		default:
			reply = protocol.ErrorReply{Err: fmt.Sprintf("objstore: unexpected message %T", msg)}
		}
		err = c.Send(reply)
		if release != nil {
			bufpool.Put(release)
		}
		if err != nil {
			if s.Logf != nil {
				s.Logf("objstore: reply failed: %v", err)
			}
			return
		}
	}
}
