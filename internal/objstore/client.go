package objstore

import (
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/chunk"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Client talks to an object-store server over a pool of connections, one
// per retrieval thread, so concurrent range fetches proceed in parallel —
// the paper's multi-threaded data retrieval, which is what lets compute
// instances saturate the available bandwidth to S3.
//
// By default connections speak the binary wire codec (the server
// auto-detects it per connection); DialCodec selects gob for peers that
// predate the binary codec. Chunk payloads returned by Get/GetRange/
// ReadChunk live in bufpool buffers — the caller owns them and should hand
// them to bufpool.Put when done (see docs/PERFORMANCE.md).
type Client struct {
	network, addr string
	codec         transport.Codec

	mu    sync.Mutex
	idle  []*transport.Conn
	total int
	max   int
}

// Dial returns a client for the server at addr with at most maxConns pooled
// connections (≤0 defaults to 8), speaking the binary wire codec.
func Dial(network, addr string, maxConns int) *Client {
	return DialCodec(network, addr, maxConns, transport.CodecBinary)
}

// DialCodec is Dial with an explicit wire codec — the gob compat fallback
// for old servers, which mirror whatever codec the client sends.
func DialCodec(network, addr string, maxConns int, codec transport.Codec) *Client {
	if maxConns <= 0 {
		maxConns = 8
	}
	return &Client{network: network, addr: addr, max: maxConns, codec: codec}
}

func (c *Client) acquire() (*transport.Conn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.total++
	c.mu.Unlock()
	conn, err := transport.DialWith(c.network, c.addr, c.codec)
	if err != nil {
		c.mu.Lock()
		c.total--
		c.mu.Unlock()
	}
	return conn, err
}

func (c *Client) release(conn *transport.Conn, broken bool) {
	if broken {
		conn.Close()
		c.mu.Lock()
		c.total--
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	if len(c.idle) < c.max {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.total--
	c.mu.Unlock()
	conn.Close()
}

// roundTrip sends req and returns the reply on a pooled connection.
func (c *Client) roundTrip(req protocol.Message) (protocol.Message, error) {
	conn, err := c.acquire()
	if err != nil {
		return nil, err
	}
	if err := conn.Send(req); err != nil {
		c.release(conn, true)
		return nil, err
	}
	reply, err := conn.Recv()
	c.release(conn, err != nil)
	return reply, err
}

// Close drops all pooled connections.
func (c *Client) Close() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
}

// Put stores an object. Failures are *OpError values classifying the cause.
func (c *Client) Put(key string, data []byte) error {
	reply, err := c.roundTrip(protocol.PutReq{Key: key, Data: data})
	if err != nil {
		return transportError("put", key, err)
	}
	resp, ok := reply.(protocol.PutResp)
	if !ok {
		return transportError("put", key, fmt.Errorf("unexpected reply %T", reply))
	}
	if resp.Err != "" {
		return opError("put", key, resp.Err, resp.Code)
	}
	return nil
}

// GetRange fetches length bytes of key starting at off (length < 0 = rest).
// Failures are *OpError values: a dropped connection or a short range read
// is transient (retryable), a missing object or out-of-range request is
// permanent.
func (c *Client) GetRange(key string, off, length int64) ([]byte, error) {
	reply, err := c.roundTrip(protocol.GetReq{Key: key, Off: off, Len: length})
	if err != nil {
		return nil, transportError("get", key, err)
	}
	resp, ok := reply.(protocol.GetResp)
	if !ok {
		return nil, transportError("get", key, fmt.Errorf("unexpected reply %T", reply))
	}
	if resp.Err != "" {
		return nil, opError("get", key, resp.Err, resp.Code)
	}
	if length >= 0 && int64(len(resp.Data)) != length {
		// A short range read: the server accepted the range, so the bytes
		// exist — a retry should succeed.
		n := len(resp.Data)
		bufpool.Put(resp.Data)
		return nil, &OpError{Op: "get", Key: key, Code: protocol.CodeTransient,
			Msg: fmt.Sprintf("short range read: %d of %d bytes", n, length)}
	}
	return resp.Data, nil
}

// Get fetches a whole object (the fault.Store interface used for
// reduction-object checkpoints).
func (c *Client) Get(key string) ([]byte, error) {
	return c.GetRange(key, 0, -1)
}

// Stat returns an object's size. Failures are *OpError values.
func (c *Client) Stat(key string) (int64, error) {
	reply, err := c.roundTrip(protocol.StatReq{Key: key})
	if err != nil {
		return 0, transportError("stat", key, err)
	}
	resp, ok := reply.(protocol.StatResp)
	if !ok {
		return 0, transportError("stat", key, fmt.Errorf("unexpected reply %T", reply))
	}
	if resp.Err != "" {
		return 0, opError("stat", key, resp.Err, resp.Code)
	}
	return resp.Size, nil
}

// List returns keys matching prefix. Failures are *OpError values.
func (c *Client) List(prefix string) ([]string, error) {
	reply, err := c.roundTrip(protocol.ListReq{Prefix: prefix})
	if err != nil {
		return nil, transportError("list", prefix, err)
	}
	switch resp := reply.(type) {
	case protocol.ListResp:
		return resp.Keys, nil
	case protocol.ErrorReply:
		return nil, opError("list", prefix, resp.Err, protocol.CodeTransient)
	default:
		return nil, transportError("list", prefix, fmt.Errorf("unexpected reply %T", reply))
	}
}

// Source adapts the client to chunk.Source for a dataset whose files are
// stored under their index names. Retrieval of one chunk is split across
// Threads parallel range fetches — the multi-threaded retrieval the paper
// uses to exploit fast interconnects.
type Source struct {
	Client  *Client
	Index   *chunk.Index
	Threads int // parallel sub-range fetches per chunk (≤0 ⇒ 1)
}

// ReadChunk implements chunk.Source.
func (s *Source) ReadChunk(ref chunk.Ref) ([]byte, error) {
	if ref.File < 0 || ref.File >= len(s.Index.Files) {
		return nil, fmt.Errorf("%w: file %d", chunk.ErrBounds, ref.File)
	}
	key := s.Index.Files[ref.File].Name
	threads := s.Threads
	if threads <= 1 || ref.Size < int64(threads) {
		return s.Client.GetRange(key, ref.Offset, ref.Size)
	}
	// The chunk buffer and the per-thread sub-range buffers all come from
	// the pool: sub-buffers are returned as soon as their bytes are copied
	// into place, and the assembled chunk is owned by the caller.
	buf := bufpool.Get(int(ref.Size))
	part := (ref.Size + int64(threads) - 1) / int64(threads)
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for t := 0; t < threads; t++ {
		start := int64(t) * part
		if start >= ref.Size {
			break
		}
		end := start + part
		if end > ref.Size {
			end = ref.Size
		}
		wg.Add(1)
		go func(t int, start, end int64) {
			defer wg.Done()
			data, err := s.Client.GetRange(key, ref.Offset+start, end-start)
			if err != nil {
				errs[t] = err
				return
			}
			copy(buf[start:end], data)
			bufpool.Put(data)
		}(t, start, end)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			bufpool.Put(buf)
			return nil, fmt.Errorf("objstore: chunk %v: %w", ref, err)
		}
	}
	return buf, nil
}

var _ chunk.Source = (*Source)(nil)

// Upload pushes every file of a materialized dataset from src into the
// store, plus the serialized index under indexKey if non-empty.
func Upload(c *Client, ix *chunk.Index, src chunk.Source, indexKey string) error {
	for _, f := range ix.Files {
		// Read the whole file as one chunk-spanning sequence.
		data := make([]byte, 0, f.Size)
		for _, ref := range f.Chunks {
			part, err := src.ReadChunk(ref)
			if err != nil {
				return fmt.Errorf("objstore: reading %s: %w", f.Name, err)
			}
			data = append(data, part...)
		}
		if err := c.Put(f.Name, data); err != nil {
			return fmt.Errorf("objstore: uploading %s: %w", f.Name, err)
		}
	}
	if indexKey != "" {
		var buf indexBuffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return err
		}
		if err := c.Put(indexKey, buf.b); err != nil {
			return err
		}
	}
	return nil
}

type indexBuffer struct{ b []byte }

func (w *indexBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
