package objstore

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/workload"
)

func testBackends(t *testing.T) map[string]Backend {
	return map[string]Backend{
		"mem": NewMemBackend(),
		"dir": DirBackend{Root: t.TempDir()},
	}
}

func TestBackendBasics(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("hello object store world")
			if err := b.Put("a/b.dat", data); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := b.Get("a/b.dat", 0, -1)
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("Get all = %q, %v", got, err)
			}
			got, err = b.Get("a/b.dat", 6, 6)
			if err != nil || string(got) != "object" {
				t.Fatalf("Get range = %q, %v", got, err)
			}
			size, err := b.Stat("a/b.dat")
			if err != nil || size != int64(len(data)) {
				t.Fatalf("Stat = %d, %v", size, err)
			}
			if _, err := b.Get("missing", 0, -1); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get missing: %v", err)
			}
			if _, err := b.Stat("missing"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Stat missing: %v", err)
			}
			if err := b.Put("a/c.dat", []byte("x")); err != nil {
				t.Fatal(err)
			}
			keys, err := b.List("a/")
			if err != nil || len(keys) != 2 || keys[0] != "a/b.dat" {
				t.Errorf("List = %v, %v", keys, err)
			}
		})
	}
}

func TestMemBackendRangeErrors(t *testing.T) {
	b := NewMemBackend()
	if err := b.Put("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("k", -1, 2); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := b.Get("k", 5, 100); err == nil {
		t.Error("overlong range accepted")
	}
	if got, _ := b.Get("k", 10, 0); len(got) != 0 {
		t.Errorf("empty tail range = %q", got)
	}
}

func TestMemBackendCopiesData(t *testing.T) {
	b := NewMemBackend()
	data := []byte("mutable")
	if err := b.Put("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := b.Get("k", 0, -1)
	if string(got) != "mutable" {
		t.Error("backend aliased caller's buffer")
	}
	got[0] = 'Y'
	again, _ := b.Get("k", 0, -1)
	if string(again) != "mutable" {
		t.Error("backend returned aliased buffer")
	}
}

// startServer brings up a server on loopback and returns its address.
func startServer(t *testing.T, backend Backend) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backend)
	srv.Logf = t.Logf
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func TestClientServer(t *testing.T) {
	addr := startServer(t, NewMemBackend())
	c := Dial("tcp", addr, 4)
	defer c.Close()

	if err := c.Put("obj", []byte("abcdefghij")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.GetRange("obj", 2, 3)
	if err != nil || string(got) != "cde" {
		t.Fatalf("GetRange = %q, %v", got, err)
	}
	size, err := c.Stat("obj")
	if err != nil || size != 10 {
		t.Fatalf("Stat = %d, %v", size, err)
	}
	keys, err := c.List("")
	if err != nil || len(keys) != 1 {
		t.Fatalf("List = %v, %v", keys, err)
	}
	if _, err := c.GetRange("missing", 0, -1); err == nil {
		t.Error("missing key fetch succeeded")
	}
	if _, err := c.Stat("missing"); err == nil {
		t.Error("missing key stat succeeded")
	}
}

func TestClientConcurrentFetches(t *testing.T) {
	backend := NewMemBackend()
	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := backend.Put("big", payload); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, backend)
	c := Dial("tcp", addr, 8)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i * 1024)
			got, err := c.GetRange("big", off, 1024)
			if err != nil {
				t.Errorf("fetch %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, payload[off:off+1024]) {
				t.Errorf("fetch %d: payload mismatch", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestSourceReadsChunks(t *testing.T) {
	gen := workload.UniformPoints{Seed: 3, Dim: 2}
	ix, err := chunk.Layout("s3", 512, gen.UnitSize(), 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	mem := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, mem); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, NewMemBackend())
	c := Dial("tcp", addr, 8)
	defer c.Close()
	if err := Upload(c, ix, mem, "index.grix"); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if _, err := c.Stat("index.grix"); err != nil {
		t.Errorf("index not uploaded: %v", err)
	}
	for _, threads := range []int{1, 4} {
		src := &Source{Client: c, Index: ix, Threads: threads}
		for _, ref := range ix.AllRefs() {
			want, err := mem.ReadChunk(ref)
			if err != nil {
				t.Fatal(err)
			}
			got, err := src.ReadChunk(ref)
			if err != nil {
				t.Fatalf("threads=%d ReadChunk(%v): %v", threads, ref, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("threads=%d chunk %v mismatch", threads, ref)
			}
		}
	}
	src := &Source{Client: c, Index: ix, Threads: 2}
	if _, err := src.ReadChunk(chunk.Ref{File: 42}); err == nil {
		t.Error("out-of-range file read succeeded")
	}
}

func TestDirBackendKeyTraversal(t *testing.T) {
	root := t.TempDir()
	b := DirBackend{Root: root}
	// A hostile key must not escape the root.
	if err := b.Put("../../escape.txt", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "..", "..", "escape.txt")); err == nil {
		t.Fatal("key escaped the backend root")
	}
	// The object is still retrievable under its sanitized key.
	if _, err := b.Get("../../escape.txt", 0, -1); err != nil {
		t.Errorf("sanitized key not readable back: %v", err)
	}
	keys, err := b.List("")
	if err != nil || len(keys) != 1 {
		t.Errorf("List = %v, %v", keys, err)
	}
}
