package objstore

import (
	"errors"
	"fmt"

	"repro/internal/protocol"
)

// ErrBadRange reports a byte range outside the object — a permanent error:
// retrying the same request can never succeed.
var ErrBadRange = errors.New("objstore: range out of bounds")

// OpError is the typed error every Client operation returns on failure. It
// classifies the failure so retry and fault policies can stop retrying
// hopeless fetches: dropped connections and short range reads are
// transient, missing objects and bad ranges are permanent.
type OpError struct {
	Op   string // "get", "put", "stat", "list"
	Key  string // object key (or prefix for list)
	Code int    // protocol.CodeTransient, CodeNotFound, CodeBadRange
	Msg  string // server- or transport-supplied detail
	Err  error  // underlying error, if any (transport failures)
}

// Error implements error.
func (e *OpError) Error() string {
	return fmt.Sprintf("objstore: %s %q: %s", e.Op, e.Key, e.Msg)
}

// Permanent reports whether retrying cannot succeed (the fault package's
// PermanentError interface).
func (e *OpError) Permanent() bool {
	return e.Code == protocol.CodeNotFound || e.Code == protocol.CodeBadRange
}

// Unwrap exposes the matching sentinel (ErrNotFound, ErrBadRange) or the
// underlying transport error, so errors.Is keeps working across the wire.
func (e *OpError) Unwrap() error {
	switch {
	case e.Err != nil:
		return e.Err
	case e.Code == protocol.CodeNotFound:
		return ErrNotFound
	case e.Code == protocol.CodeBadRange:
		return ErrBadRange
	}
	return nil
}

// classify maps a backend error to its wire code.
func classify(err error) int {
	switch {
	case err == nil:
		return protocol.CodeOK
	case errors.Is(err, ErrNotFound):
		return protocol.CodeNotFound
	case errors.Is(err, ErrBadRange):
		return protocol.CodeBadRange
	}
	return protocol.CodeTransient
}

// opError builds the client-side error for a server response.
func opError(op, key, msg string, code int) *OpError {
	if code == protocol.CodeOK {
		// An old or minimal server reported an error without classifying
		// it; treat it as transient so retries still happen.
		code = protocol.CodeTransient
	}
	return &OpError{Op: op, Key: key, Code: code, Msg: msg}
}

// transportError wraps a connection-level failure as a transient OpError.
func transportError(op, key string, err error) *OpError {
	return &OpError{Op: op, Key: key, Code: protocol.CodeTransient, Msg: err.Error(), Err: err}
}
