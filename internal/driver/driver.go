// Package driver runs iterative generalized-reduction jobs (k-means lloyd
// rounds, PageRank power iterations) over a hybrid deployment. Each round
// is one full framework run — job pool, on-demand assignment, stealing,
// local and global reduction — and between rounds only the application
// parameters (derived from the previous round's reduction object) change.
// The data never moves.
//
// The driver deploys clusters in-process against any chunk.Source wiring
// (local memory, directories, object-store clients behind emulated WANs);
// multi-process deployments script the same loop with the cmd/headnode and
// cmd/workernode daemons.
package driver

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/head"
	"repro/internal/jobs"
	"repro/internal/protocol"
)

// ClusterSpec describes one participating cluster.
type ClusterSpec struct {
	Site             int
	Name             string
	Cores            int
	RetrievalThreads int
	// Sources maps site → source for this cluster's data paths. Required.
	Sources map[int]chunk.Source
	// SourceLabels names sources for byte accounting; optional.
	SourceLabels map[int]string
	// Retry is the retrieval fault-tolerance policy.
	Retry cluster.Retry
}

// Deployment is a reusable hybrid deployment: dataset layout, placement and
// cluster wiring that stay fixed across rounds.
type Deployment struct {
	Index      *chunk.Index
	Placement  jobs.Placement
	Clusters   []ClusterSpec
	PoolOpts   jobs.Options
	GroupBytes int
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Step is one round's job: the registered application and its parameters,
// plus the head-side reducer used for decoding and the global reduction.
type Step struct {
	App     string
	Params  []byte
	Reducer core.Reducer
}

// RoundReport is what one round produced.
type RoundReport struct {
	Round   int
	Object  core.Object
	Reports []head.ClusterReport
}

func (d *Deployment) validate() error {
	if d.Index == nil {
		return errors.New("driver: Index is required")
	}
	if len(d.Clusters) == 0 {
		return errors.New("driver: at least one cluster is required")
	}
	if err := d.Placement.Validate(d.Index); err != nil {
		return err
	}
	for i, c := range d.Clusters {
		if c.Cores <= 0 {
			return fmt.Errorf("driver: cluster %d (%s) has %d cores", i, c.Name, c.Cores)
		}
		if len(c.Sources) == 0 {
			return fmt.Errorf("driver: cluster %d (%s) has no sources", i, c.Name)
		}
	}
	return nil
}

// RunOnce executes a single round and returns the merged reduction object
// with the per-cluster reports.
func (d *Deployment) RunOnce(s Step) (core.Object, []head.ClusterReport, error) {
	if err := d.validate(); err != nil {
		return nil, nil, err
	}
	if s.Reducer == nil {
		return nil, nil, errors.New("driver: Step.Reducer is required")
	}
	pool, err := jobs.NewPool(d.Index, d.Placement, d.PoolOpts)
	if err != nil {
		return nil, nil, err
	}
	spec := protocol.JobSpec{
		App:        s.App,
		Params:     s.Params,
		UnitSize:   d.Index.UnitSize,
		GroupBytes: d.GroupBytes,
	}
	if err := head.EncodeIndexSpec(&spec, d.Index); err != nil {
		return nil, nil, err
	}
	logf := d.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h, err := head.New(head.Config{
		Pool:           pool,
		Reducer:        s.Reducer,
		Spec:           spec,
		ExpectClusters: len(d.Clusters),
		Logf:           logf,
	})
	if err != nil {
		return nil, nil, err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(d.Clusters))
	for i, cs := range d.Clusters {
		wg.Add(1)
		go func(i int, cs ClusterSpec) {
			defer wg.Done()
			_, errs[i] = cluster.Run(cluster.Config{
				Site:             cs.Site,
				Name:             cs.Name,
				Cores:            cs.Cores,
				RetrievalThreads: cs.RetrievalThreads,
				Sources:          cs.Sources,
				SourceLabels:     cs.SourceLabels,
				Head:             cluster.InProc{Head: h},
				GroupBytes:       d.GroupBytes,
				Retry:            cs.Retry,
				Logf:             logf,
			})
		}(i, cs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("driver: cluster %d (%s): %w", i, d.Clusters[i].Name, err)
		}
	}
	obj, reports, _, err := h.Result()
	if err != nil {
		return nil, nil, err
	}
	return obj, reports, nil
}

// Iterate runs rounds until next returns a nil Step or maxRounds is
// reached. next receives the previous round's reduction object (nil on the
// first round) and derives the next round's parameters. It returns the last
// object, the per-round reports, and the number of rounds executed.
func (d *Deployment) Iterate(maxRounds int, next func(round int, prev core.Object) (*Step, error)) (core.Object, []RoundReport, error) {
	if maxRounds <= 0 {
		return nil, nil, fmt.Errorf("driver: maxRounds must be positive, got %d", maxRounds)
	}
	var (
		prev    core.Object
		reports []RoundReport
	)
	for round := 0; round < maxRounds; round++ {
		step, err := next(round, prev)
		if err != nil {
			return nil, reports, err
		}
		if step == nil {
			break
		}
		obj, clusterReports, err := d.RunOnce(*step)
		if err != nil {
			return nil, reports, fmt.Errorf("driver: round %d: %w", round, err)
		}
		prev = obj
		reports = append(reports, RoundReport{Round: round, Object: obj, Reports: clusterReports})
	}
	if prev == nil {
		return nil, nil, errors.New("driver: no rounds executed")
	}
	return prev, reports, nil
}
