// Package driver is the public client surface for running generalized-
// reduction queries over a hybrid deployment. A Deployment describes the
// fixed wiring — dataset layout, placement, clusters; a Client opens
// Sessions over it; a Session accepts concurrent queries (Submit → Query →
// Wait/Cancel) that share the deployed clusters under the head's weighted
// fair-share scheduler.
//
// The original round-at-a-time entry points remain as thin wrappers:
// Deployment.RunOnce submits one query over a fresh session and waits;
// Deployment.Iterate runs dependent rounds (k-means lloyd iterations,
// PageRank power steps) over one session, re-using the clusters'
// registrations across rounds. The data never moves.
//
// Multi-process deployments script the same loop with the cmd/headnode and
// cmd/workernode daemons.
package driver

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/head"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// ClusterSpec describes one participating cluster.
type ClusterSpec struct {
	Site             int
	Name             string
	Cores            int
	RetrievalThreads int
	// Sources maps site → source for this cluster's data paths. Required.
	Sources map[int]chunk.Source
	// SourceLabels names sources for byte accounting; optional.
	SourceLabels map[int]string
	// Retry is the retrieval fault-tolerance policy.
	Retry cluster.Retry
}

// Deployment is a reusable hybrid deployment: dataset layout, placement and
// cluster wiring that stay fixed across queries.
type Deployment struct {
	Index     *chunk.Index
	Placement jobs.Placement
	Clusters  []ClusterSpec
	PoolOpts  jobs.Options
	// Tuning carries the shared knobs (GroupBytes, PrefetchDepth,
	// CheckpointEveryJobs, lease/heartbeat cadence, …) applied to both the
	// session's head and its cluster agents. See config.Tuning.
	Tuning config.Tuning
	// Obs, when non-nil, receives head- and cluster-side metrics and traces.
	Obs *obs.Obs
	// DebugAddr, when non-empty, serves the observability debug surface for
	// each session's lifetime on this TCP address (":0" for an ephemeral
	// port; see Session.DebugAddr): /healthz, /metrics, /debug/metrics
	// (Prometheus text), /debug/vars, /debug/trace and /debug/pprof/. The
	// metrics and trace endpoints read the deployment's Obs bundle.
	DebugAddr string
	// Elastic, when non-nil, enables dynamic provisioning: queries submitted
	// with Step.Elastic run under a burst controller that launches and drains
	// cloud workers mid-query. Sessions over an elastic deployment admit
	// sites beyond the static cluster set (head.Config.DynamicSites).
	Elastic *ElasticConfig
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// ElasticConfig wires the session-wide elastic arbiter into a deployment:
// every session over the deployment runs one arbiter loop that sizes a
// single shared burst fleet against the aggregate remaining work of all
// admitted queries, weighing each query's own deadline/budget policy
// (Step.Elastic) by its fair-share weight.
type ElasticConfig struct {
	// Env models the static topology plus what one more burst worker buys —
	// the arbiter's estimator input (see elastic.Env).
	Env elastic.Env
	// Worker is the template for live burst workers: its Sources must cover
	// every data site (burst workers host no data of their own). Site and
	// Name are overridden per launch.
	Worker ClusterSpec
	// Launcher overrides the worker actuator; nil launches in-process agents
	// from Worker, wired to the session's head.
	Launcher cluster.Launcher
	// SiteBase is the first burst site ID (elastic.DefaultWorkerSiteBase
	// when 0); burst IDs grow monotonically and are never reused.
	SiteBase int
	// Arbiter tunes the session-wide loop: tick interval, scale-up
	// cooldown, drain timeout, launch lead time, the fleet-wide worker cap,
	// and pricing. Zero values take the elastic package defaults.
	Arbiter elastic.ArbiterConfig
}

// Step is one query's job: the registered application and its parameters,
// plus the head-side reducer used for decoding and the global reduction.
type Step struct {
	App     string
	Params  []byte
	Reducer core.Reducer
	// Weight is the query's fair-share weight under contention (default 1).
	Weight int
	// Placement overrides the deployment's placement for this query; nil
	// uses the deployment default.
	Placement jobs.Placement
	// PoolOpts overrides the deployment's pool options for this query; nil
	// uses the deployment default.
	PoolOpts *jobs.Options
	// Elastic is this query's deadline/budget policy, weighed by the
	// session-wide arbiter against every other admitted query's when sizing
	// the shared burst fleet (only Deadline, Budget, MinWorkers and
	// MaxWorkers are consulted). Requires Deployment.Elastic. Nil inherits
	// the head's session default policy, if any; in an elastic deployment
	// queries complete on the contributor rule (not ExpectAll), so workers
	// drained mid-query do not stall completion.
	Elastic *elastic.Policy
}

// RoundReport is what one round produced.
type RoundReport struct {
	Round   int
	Object  core.Object
	Reports []head.ClusterReport
}

func (d *Deployment) validate() error {
	if d.Index == nil {
		return errors.New("driver: Index is required")
	}
	if len(d.Clusters) == 0 {
		return errors.New("driver: at least one cluster is required")
	}
	if err := d.Placement.Validate(d.Index); err != nil {
		return err
	}
	for i, c := range d.Clusters {
		if c.Cores <= 0 {
			return fmt.Errorf("driver: cluster %d (%s) has %d cores", i, c.Name, c.Cores)
		}
		if len(c.Sources) == 0 {
			return fmt.Errorf("driver: cluster %d (%s) has no sources", i, c.Name)
		}
	}
	if e := d.Elastic; e != nil && e.Launcher == nil {
		if e.Worker.Cores <= 0 {
			return fmt.Errorf("driver: ElasticConfig.Worker has %d cores", e.Worker.Cores)
		}
		if len(e.Worker.Sources) == 0 {
			return errors.New("driver: ElasticConfig.Worker has no sources")
		}
	}
	return nil
}

// RunOnce executes a single query over a fresh session and returns the
// merged reduction object with the per-cluster reports. Thin wrapper over
// Session.Submit + Query.Wait; use a Session directly to run queries
// concurrently or to amortize cluster registration across calls.
func (d *Deployment) RunOnce(s Step) (core.Object, []head.ClusterReport, error) {
	sess, err := NewSession(d)
	if err != nil {
		return nil, nil, err
	}
	defer sess.Close()
	q, err := sess.Submit(s)
	if err != nil {
		return nil, nil, err
	}
	return q.Wait(context.Background())
}

// Iterate runs rounds until next returns a nil Step or maxRounds is
// reached. next receives the previous round's reduction object (nil on the
// first round) and derives the next round's parameters. It returns the last
// object, the per-round reports, and the number of rounds executed. Thin
// wrapper over Session.Iterate with a background context; the clusters
// register once for the whole sequence.
func (d *Deployment) Iterate(maxRounds int, next func(round int, prev core.Object) (*Step, error)) (core.Object, []RoundReport, error) {
	sess, err := NewSession(d)
	if err != nil {
		return nil, nil, err
	}
	defer sess.Close()
	return sess.Iterate(context.Background(), maxRounds, next)
}
