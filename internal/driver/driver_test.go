package driver

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/workload"
)

// buildPointDeployment creates a two-cluster deployment over clustered
// points with a 50/50 placement.
func buildPointDeployment(t *testing.T, gen workload.ClusteredPoints, units int64) (*Deployment, *chunk.MemSource) {
	t.Helper()
	ix, err := chunk.Layout("drv", units, gen.UnitSize(), 250, 50)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, src); err != nil {
		t.Fatal(err)
	}
	sources := map[int]chunk.Source{0: src, 1: src}
	return &Deployment{
		Index:     ix,
		Placement: jobs.SplitByFraction(len(ix.Files), 0.5, 0, 1),
		Clusters: []ClusterSpec{
			{Site: 0, Name: "local", Cores: 2, Sources: sources},
			{Site: 1, Name: "cloud", Cores: 2, Sources: sources},
		},
		Logf: t.Logf,
	}, src
}

func TestIterateKMeansConverges(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 17, Dim: 2, K: 3, Spread: 0.01}
	d, src := buildPointDeployment(t, gen, 1500)
	centers, err := apps.SeedCenters(d.Index, src, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var lastSSE float64
	obj, rounds, err := d.Iterate(20, func(round int, prev core.Object) (*Step, error) {
		if prev != nil {
			acc := prev.(*apps.KMeansObject)
			centers = apps.NextCenters(acc, centers)
			if round > 1 && lastSSE-acc.SSE < 1e-9*lastSSE {
				return nil, nil // converged
			}
			lastSSE = acc.SSE
		}
		p := apps.KMeansParams{K: 3, Dim: 2, Centers: centers}
		params, err := apps.EncodeKMeansParams(p)
		if err != nil {
			return nil, err
		}
		r, err := apps.NewKMeansReducer(p)
		if err != nil {
			return nil, err
		}
		return &Step{App: apps.KMeansReducerName, Params: params, Reducer: r}, nil
	})
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	if len(rounds) < 2 || len(rounds) > 20 {
		t.Errorf("rounds = %d", len(rounds))
	}
	acc := obj.(*apps.KMeansObject)
	var total int64
	for _, c := range acc.Counts {
		total += c
	}
	if total != d.Index.TotalUnits() {
		t.Errorf("points accounted = %d, want %d", total, d.Index.TotalUnits())
	}
	// Learned centers near true blob centers.
	final := apps.NextCenters(acc, centers)
	for ci, c := range final {
		best := math.MaxFloat64
		for k := 0; k < 3; k++ {
			tc := gen.TrueCenter(k)
			dist := 0.0
			for i := range c {
				dist += (c[i] - tc[i]) * (c[i] - tc[i])
			}
			if dist < best {
				best = dist
			}
		}
		if best > 0.02 {
			t.Errorf("center %d is %v² from every true center", ci, best)
		}
	}
	// Each round used both clusters.
	for _, rr := range rounds {
		if len(rr.Reports) != 2 {
			t.Errorf("round %d reports = %d", rr.Round, len(rr.Reports))
		}
	}
}

func TestIteratePageRank(t *testing.T) {
	const nodes = 30
	gen := &workload.PowerLawGraph{Seed: 3, Nodes: nodes, Edges: 900}
	ix, err := chunk.Layout("g", 900, workload.EdgeUnitSize, 300, 60)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, src); err != nil {
		t.Fatal(err)
	}
	sources := map[int]chunk.Source{0: src, 1: src}
	d := &Deployment{
		Index:     ix,
		Placement: jobs.SplitByFraction(len(ix.Files), 1.0/3.0, 0, 1),
		Clusters: []ClusterSpec{
			{Site: 0, Name: "local", Cores: 2, Sources: sources},
			{Site: 1, Name: "cloud", Cores: 2, Sources: sources},
		},
	}
	var ranks []float64
	obj, rounds, err := d.Iterate(5, func(round int, prev core.Object) (*Step, error) {
		if prev != nil {
			ranks = apps.NextRanks(prev.(*apps.PageRankObject), 0.85)
		}
		p := apps.PageRankParams{Nodes: nodes, Damping: 0.85, Ranks: ranks}
		params, err := apps.EncodePageRankParams(p)
		if err != nil {
			return nil, err
		}
		r, err := apps.NewPageRankReducer(p)
		if err != nil {
			return nil, err
		}
		return &Step{App: apps.PageRankReducerName, Params: params, Reducer: r}, nil
	})
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	if len(rounds) != 5 {
		t.Errorf("rounds = %d, want 5", len(rounds))
	}
	final := apps.NextRanks(obj.(*apps.PageRankObject), 0.85)
	var sum float64
	for _, v := range final {
		if v <= 0 {
			t.Errorf("non-positive rank %v", v)
		}
		sum += v
	}
	if sum < 0.5 || sum > 1.01 {
		t.Errorf("rank mass = %v", sum)
	}
}

func TestDeploymentValidation(t *testing.T) {
	if _, _, err := (&Deployment{}).RunOnce(Step{}); err == nil {
		t.Error("empty deployment accepted")
	}
	gen := workload.ClusteredPoints{Seed: 1, Dim: 2, K: 2, Spread: 0.1}
	d, _ := buildPointDeployment(t, gen, 500)
	if _, _, err := d.RunOnce(Step{App: "x"}); err == nil {
		t.Error("nil reducer accepted")
	}
	bad := *d
	bad.Clusters = []ClusterSpec{{Site: 0, Name: "x", Cores: 0, Sources: d.Clusters[0].Sources}}
	if _, _, err := bad.RunOnce(Step{}); err == nil {
		t.Error("zero-core cluster accepted")
	}
	bad = *d
	bad.Placement = jobs.Placement{0}
	if _, _, err := bad.RunOnce(Step{}); err == nil {
		t.Error("short placement accepted")
	}
	if _, _, err := d.Iterate(0, nil); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestIterateStepError(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 1, Dim: 2, K: 2, Spread: 0.1}
	d, _ := buildPointDeployment(t, gen, 500)
	boom := errors.New("boom")
	if _, _, err := d.Iterate(3, func(int, core.Object) (*Step, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	// Immediate stop without any round is an error.
	if _, _, err := d.Iterate(3, func(int, core.Object) (*Step, error) {
		return nil, nil
	}); err == nil {
		t.Error("zero executed rounds accepted")
	}
}

// TestThreeClusterDeployment: the driver (and head/cluster runtime under
// it) handles more than two clusters — the paper's multi-provider claim.
func TestThreeClusterDeployment(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 8, Dim: 2, K: 2, Spread: 0.05}
	ix, err := chunk.Layout("mc", 900, gen.UnitSize(), 150, 50)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, src); err != nil {
		t.Fatal(err)
	}
	sources := map[int]chunk.Source{0: src, 1: src, 2: src}
	placement := make(jobs.Placement, len(ix.Files))
	for i := range placement {
		placement[i] = i % 3
	}
	d := &Deployment{
		Index:     ix,
		Placement: placement,
		Clusters: []ClusterSpec{
			{Site: 0, Name: "local", Cores: 2, Sources: sources},
			{Site: 1, Name: "cloudA", Cores: 2, Sources: sources},
			{Site: 2, Name: "cloudB", Cores: 1, Sources: sources},
		},
	}
	p := apps.HistogramParams{Bins: 8, Dim: 2}
	params, err := apps.EncodeHistogramParams(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := apps.NewHistogramReducer(p)
	if err != nil {
		t.Fatal(err)
	}
	obj, reports, err := d.RunOnce(Step{App: apps.HistogramReducerName, Params: params, Reducer: r})
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if got := obj.(*apps.HistogramObject).Total(); got != ix.TotalUnits() {
		t.Errorf("histogram total = %d, want %d", got, ix.TotalUnits())
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	jobsTotal := 0
	for _, rr := range reports {
		jobsTotal += rr.Jobs.Total()
	}
	if jobsTotal != ix.NumChunks() {
		t.Errorf("jobs = %d, want %d", jobsTotal, ix.NumChunks())
	}
}

// TestIterateWithFlakySources: the retry policy composes with the driver —
// transient per-chunk failures across rounds stay invisible.
func TestIterateWithFlakySources(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 6, Dim: 2, K: 2, Spread: 0.05}
	ix, err := chunk.Layout("fl", 600, gen.UnitSize(), 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, src); err != nil {
		t.Fatal(err)
	}
	flaky := &onceFlaky{inner: src, failed: map[chunk.Ref]bool{}}
	sources := map[int]chunk.Source{0: flaky, 1: flaky}
	d := &Deployment{
		Index:     ix,
		Placement: jobs.SplitByFraction(len(ix.Files), 0.5, 0, 1),
		Clusters: []ClusterSpec{
			{Site: 0, Name: "a", Cores: 2, Sources: sources,
				Retry: cluster.Retry{Attempts: 3, Backoff: time.Millisecond}},
			{Site: 1, Name: "b", Cores: 2, Sources: sources,
				Retry: cluster.Retry{Attempts: 3, Backoff: time.Millisecond}},
		},
	}
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, err := apps.EncodeHistogramParams(p)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		r, err := apps.NewHistogramReducer(p)
		if err != nil {
			t.Fatal(err)
		}
		obj, _, err := d.RunOnce(Step{App: apps.HistogramReducerName, Params: params, Reducer: r})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := obj.(*apps.HistogramObject).Total(); got != ix.TotalUnits() {
			t.Errorf("round %d total = %d, want %d", round, got, ix.TotalUnits())
		}
	}
}

// onceFlaky fails each chunk's first-ever read.
type onceFlaky struct {
	inner chunk.Source

	mu     sync.Mutex
	failed map[chunk.Ref]bool
}

func (f *onceFlaky) ReadChunk(ref chunk.Ref) ([]byte, error) {
	f.mu.Lock()
	first := !f.failed[ref]
	f.failed[ref] = true
	f.mu.Unlock()
	if first {
		return nil, errors.New("transient")
	}
	return f.inner.ReadChunk(ref)
}
