package driver

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/chunk"
	"repro/internal/costmodel"
	"repro/internal/elastic"
	"repro/internal/hybridsim"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workload"
)

// slowAfter wraps a Source: once `after` chunks have been read, every
// further read stalls for `delay` — the live analogue of the simulator's
// injected mid-run slowdown (a degrading disk array under the static
// clusters). Burst workers get the unwrapped source: they read in-region.
type slowAfter struct {
	inner chunk.Source
	after int64
	delay time.Duration
	reads atomic.Int64
}

func (s *slowAfter) ReadChunk(ref chunk.Ref) ([]byte, error) {
	if s.reads.Add(1) > s.after {
		time.Sleep(s.delay)
	}
	return s.inner.ReadChunk(ref)
}

// TestElasticLiveScaleUpMeetsDeadline is the live end-to-end drill: a
// two-cluster deployment whose sources degrade mid-run, once with the static
// topology and once under the burst controller with a deadline the static
// run cannot make. The elastic run must scale up mid-query through the
// in-process AgentLauncher, beat the static run (and its deadline), drain
// every burst worker, and produce a byte-identical reduction object with
// every data unit folded exactly once.
func TestElasticLiveScaleUpMeetsDeadline(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 9, Dim: 2, K: 2, Spread: 0.05}
	ix, err := chunk.Layout("els", 2400, gen.UnitSize(), 200, 25) // 96 chunks
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, src); err != nil {
		t.Fatal(err)
	}
	hp := apps.HistogramParams{Bins: 8, Dim: 2}
	params, err := apps.EncodeHistogramParams(hp)
	if err != nil {
		t.Fatal(err)
	}
	step := func() Step {
		r, err := apps.NewHistogramReducer(hp)
		if err != nil {
			t.Fatal(err)
		}
		return Step{App: apps.HistogramReducerName, Params: params, Reducer: r}
	}
	deploy := func(o *obs.Obs, ec *ElasticConfig) *Deployment {
		slow := &slowAfter{inner: src, after: 8, delay: 25 * time.Millisecond}
		sources := map[int]chunk.Source{0: slow, 1: slow}
		return &Deployment{
			Index:     ix,
			Placement: jobs.SplitByFraction(len(ix.Files), 0.5, 0, 1),
			Clusters: []ClusterSpec{
				{Site: 0, Name: "local", Cores: 2, Sources: sources},
				{Site: 1, Name: "cloud", Cores: 2, Sources: sources},
			},
			Obs:     o,
			Elastic: ec,
			Logf:    t.Logf,
		}
	}

	// Static baseline: the pre-sized topology rides out the slowdown.
	s := step()
	start := time.Now()
	staticObj, staticReports, err := deploy(nil, nil).RunOnce(s)
	if err != nil {
		t.Fatal(err)
	}
	staticDur := time.Since(start)
	staticBytes, err := s.Reducer.Encode(staticObj)
	if err != nil {
		t.Fatal(err)
	}
	staticJobs := 0
	for _, r := range staticReports {
		staticJobs += r.Jobs.Local + r.Jobs.Stolen
	}
	if staticJobs != ix.NumChunks() {
		t.Fatalf("static run committed %d jobs, want %d", staticJobs, ix.NumChunks())
	}

	// Controller environment, calibrated so the nominal model reproduces the
	// static runtime: est(0 extra workers) ≈ staticDur, and each 2-core burst
	// worker adds half the static capacity.
	totalBytes := float64(ix.TotalUnits() * int64(gen.UnitSize()))
	perCore := totalBytes / staticDur.Seconds() / 4
	env := elastic.Env{
		Base: hybridsim.Config{
			App: hybridsim.AppModel{Name: "hist-live", ComputeBytesPerSec: perCore,
				RobjBytes: 1 << 10, MergeBytesPerSec: 1 << 40},
			Topology: hybridsim.Topology{Clusters: []hybridsim.ClusterModel{
				{Name: "local", Site: 0, Cores: 2, RetrievalThreads: 2},
				{Name: "cloud", Site: 1, Cores: 2, RetrievalThreads: 2},
			}},
		},
		Worker: hybridsim.ClusterModel{Cores: 2, RetrievalThreads: 2},
	}
	o := obs.New(nil)
	ec := &ElasticConfig{
		Env: env,
		// Burst workers read the pristine source directly — the in-region
		// path the slowdown does not touch.
		Worker: ClusterSpec{Cores: 2, Sources: map[int]chunk.Source{0: src, 1: src}},
	}
	deadline := staticDur * 3 / 5
	s = step()
	s.Elastic = &elastic.Policy{
		Deadline:              deadline,
		MaxWorkers:            3,
		Interval:              40 * time.Millisecond,
		ScaleUpCooldown:       120 * time.Millisecond,
		ScaleDownDrainTimeout: 5 * time.Second,
		Pricing:               costmodel.DefaultPricingCurrent(),
	}
	start = time.Now()
	elasticObj, elasticReports, err := deploy(o, ec).RunOnce(s)
	if err != nil {
		t.Fatal(err)
	}
	elasticDur := time.Since(start)

	// Conservation: every chunk committed exactly once across static AND
	// burst sites, every unit folded exactly once.
	elasticJobs, burstSites := 0, 0
	for _, r := range elasticReports {
		elasticJobs += r.Jobs.Local + r.Jobs.Stolen
		if r.Site >= elastic.DefaultWorkerSiteBase {
			burstSites++
		}
	}
	if elasticJobs != ix.NumChunks() {
		t.Errorf("elastic run committed %d jobs, want %d", elasticJobs, ix.NumChunks())
	}
	if got := elasticObj.(*apps.HistogramObject).Total(); got != ix.TotalUnits() {
		t.Errorf("elastic run folded %d units, want %d", got, ix.TotalUnits())
	}

	// Byte-identical result (histogram counts are partition-invariant).
	elasticBytes, err := s.Reducer.Encode(elasticObj)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(elasticBytes, staticBytes) {
		t.Errorf("elastic reduction object differs from static run")
	}

	// The controller must have actually scaled up mid-query, and every burst
	// worker must be gone by the end.
	snap := o.Registry.Snapshot()
	ups, workersLeft := int64(0), int64(0)
	for k, v := range snap {
		if strings.HasPrefix(k, "elastic_scale_events_total") && strings.Contains(k, `dir="up"`) {
			ups += v
		}
		if strings.HasPrefix(k, "elastic_workers") {
			workersLeft += v
		}
	}
	if ups == 0 {
		t.Errorf("no scale-up events recorded: %v", filterPrefix(snap, "elastic_"))
	}
	if workersLeft != 0 {
		t.Errorf("elastic_workers gauges nonzero after the run: %v", filterPrefix(snap, "elastic_workers"))
	}
	if burstSites == 0 {
		t.Errorf("no burst worker contributed a reduction object")
	}

	t.Logf("static %.0fms vs elastic %.0fms (deadline %.0fms), %d burst contributors",
		float64(staticDur.Milliseconds()), float64(elasticDur.Milliseconds()),
		float64(deadline.Milliseconds()), burstSites)
	if elasticDur >= staticDur {
		t.Errorf("elastic run (%v) not faster than the static run (%v) it bursts past", elasticDur, staticDur)
	}
	if elasticDur > deadline {
		t.Errorf("elastic run %v missed the %v deadline the controller was steering at", elasticDur, deadline)
	}
}
