package driver

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/elastic"
	"repro/internal/head"
	"repro/internal/hybridsim"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workload"
)

// slowAfter wraps a Source: once `after` chunks have been read, every
// further read stalls for `delay` — the live analogue of the simulator's
// injected mid-run slowdown (a degrading disk array under the static
// clusters). Burst workers get the unwrapped source: they read in-region.
type slowAfter struct {
	inner chunk.Source
	after int64
	delay time.Duration
	reads atomic.Int64
}

func (s *slowAfter) ReadChunk(ref chunk.Ref) ([]byte, error) {
	if s.reads.Add(1) > s.after {
		time.Sleep(s.delay)
	}
	return s.inner.ReadChunk(ref)
}

// TestArbiterLiveTwoQueryDeadlines is the live end-to-end drill for the
// session-wide arbiter: TWO concurrent queries, each with its own policy,
// over a deployment whose sources degrade mid-run. One arbiter sizes one
// shared burst fleet for the aggregate; the tight-deadline query must meet
// a deadline the static topology demonstrably misses (measured by a static
// concurrent baseline), the lax query must stay within its budget, every
// burst worker must be gone by the end, and both reduction objects must be
// byte-identical to sequential static runs.
func TestArbiterLiveTwoQueryDeadlines(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 9, Dim: 2, K: 2, Spread: 0.05}
	ix, err := chunk.Layout("els", 2400, gen.UnitSize(), 200, 25) // 96 chunks
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, src); err != nil {
		t.Fatal(err)
	}
	// Two distinguishable queries over the same scan: 8-bin and 16-bin
	// histograms, so each byte-identity check has its own baseline.
	mkStep := func(bins int) Step {
		hp := apps.HistogramParams{Bins: bins, Dim: 2}
		params, err := apps.EncodeHistogramParams(hp)
		if err != nil {
			t.Fatal(err)
		}
		r, err := apps.NewHistogramReducer(hp)
		if err != nil {
			t.Fatal(err)
		}
		return Step{App: apps.HistogramReducerName, Params: params, Reducer: r}
	}
	deploy := func(o *obs.Obs, ec *ElasticConfig) *Deployment {
		slow := &slowAfter{inner: src, after: 8, delay: 25 * time.Millisecond}
		sources := map[int]chunk.Source{0: slow, 1: slow}
		return &Deployment{
			Index:     ix,
			Placement: jobs.SplitByFraction(len(ix.Files), 0.5, 0, 1),
			Clusters: []ClusterSpec{
				{Site: 0, Name: "local", Cores: 2, Sources: sources},
				{Site: 1, Name: "cloud", Cores: 2, Sources: sources},
			},
			Obs:     o,
			Elastic: ec,
			Logf:    t.Logf,
		}
	}
	encode := func(s Step, obj core.Object) []byte {
		b, err := s.Reducer.Encode(obj)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	countJobs := func(reports []head.ClusterReport) (jobs, burst int) {
		for _, r := range reports {
			jobs += r.Jobs.Local + r.Jobs.Stolen
			if r.Site >= elastic.DefaultWorkerSiteBase {
				burst++
			}
		}
		return
	}
	type queryRun struct {
		obj     core.Object
		reports []head.ClusterReport
		dur     time.Duration
		err     error
	}
	waitBoth := func(start time.Time, a, b *Query) (ra, rb queryRun) {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			ra.obj, ra.reports, ra.err = a.Wait(context.Background())
			ra.dur = time.Since(start)
		}()
		go func() {
			defer wg.Done()
			rb.obj, rb.reports, rb.err = b.Wait(context.Background())
			rb.dur = time.Since(start)
		}()
		wg.Wait()
		return
	}

	// Sequential static runs: byte-identity baselines, and the calibration
	// point for the arbiter's analytic model.
	sT := mkStep(8)
	start := time.Now()
	staticTightObj, staticTightReports, err := deploy(nil, nil).RunOnce(sT)
	if err != nil {
		t.Fatal(err)
	}
	staticDur := time.Since(start)
	staticTightBytes := encode(sT, staticTightObj)
	if jobs, _ := countJobs(staticTightReports); jobs != ix.NumChunks() {
		t.Fatalf("static run committed %d jobs, want %d", jobs, ix.NumChunks())
	}
	sL := mkStep(16)
	staticLaxObj, _, err := deploy(nil, nil).RunOnce(sL)
	if err != nil {
		t.Fatal(err)
	}
	staticLaxBytes := encode(sL, staticLaxObj)

	// Static CONCURRENT baseline: both queries compete for the fixed
	// topology, so the tight query's completion time here is what its
	// deadline must beat — "a deadline static misses".
	concSess, err := NewSession(deploy(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	concStart := time.Now()
	cT, err := concSess.Submit(mkStep(8))
	if err != nil {
		t.Fatal(err)
	}
	cL, err := concSess.Submit(mkStep(16))
	if err != nil {
		t.Fatal(err)
	}
	concTight, concLax := waitBoth(concStart, cT, cL)
	if concTight.err != nil || concLax.err != nil {
		t.Fatal(concTight.err, concLax.err)
	}
	if err := concSess.Close(); err != nil {
		t.Fatal(err)
	}

	// The tight deadline sits between the single-query static runtime and
	// the static concurrent runtime: infeasible for the shared static
	// topology (double the work, same capacity), feasible with burst.
	deadline := staticDur * 5 / 4
	if concTight.dur <= deadline {
		t.Fatalf("static concurrent run finished the tight query in %v, inside the %v deadline — baseline not discriminating", concTight.dur, deadline)
	}

	// Arbiter environment, calibrated so the nominal model reproduces the
	// static runtime: est(0 extra workers) ≈ staticDur for one query, and
	// each 2-core burst worker adds half the static capacity.
	totalBytes := float64(ix.TotalUnits() * int64(gen.UnitSize()))
	perCore := totalBytes / staticDur.Seconds() / 4
	env := elastic.Env{
		Base: hybridsim.Config{
			App: hybridsim.AppModel{Name: "hist-live", ComputeBytesPerSec: perCore,
				RobjBytes: 1 << 10, MergeBytesPerSec: 1 << 40},
			Topology: hybridsim.Topology{Clusters: []hybridsim.ClusterModel{
				{Name: "local", Site: 0, Cores: 2, RetrievalThreads: 2},
				{Name: "cloud", Site: 1, Cores: 2, RetrievalThreads: 2},
			}},
		},
		Worker: hybridsim.ClusterModel{Cores: 2, RetrievalThreads: 2},
	}
	o := obs.New(nil)
	ec := &ElasticConfig{
		Env: env,
		// Burst workers read the pristine source directly — the in-region
		// path the slowdown does not touch.
		Worker: ClusterSpec{Cores: 2, Sources: map[int]chunk.Source{0: src, 1: src}},
		// Session-wide knobs live on the arbiter; per-query deadline/budget
		// travel with each Step below.
		Arbiter: elastic.ArbiterConfig{
			Interval:              40 * time.Millisecond,
			ScaleUpCooldown:       120 * time.Millisecond,
			ScaleDownDrainTimeout: 5 * time.Second,
			MaxWorkers:            4,
			Pricing:               costmodel.DefaultPricingCurrent(),
		},
	}
	const laxBudget = 0.02 // dollars; generous at per-second billing, but a real cap
	eT := mkStep(8)
	eT.Elastic = &elastic.Policy{Deadline: deadline}
	eL := mkStep(16)
	eL.Elastic = &elastic.Policy{Deadline: 4 * staticDur, Budget: laxBudget}

	sess, err := NewSession(deploy(o, ec))
	if err != nil {
		t.Fatal(err)
	}
	elasticStart := time.Now()
	qT, err := sess.Submit(eT)
	if err != nil {
		t.Fatal(err)
	}
	qL, err := sess.Submit(eL)
	if err != nil {
		t.Fatal(err)
	}
	laxID := qL.ID()
	elTight, elLax := waitBoth(elasticStart, qT, qL)
	if elTight.err != nil || elLax.err != nil {
		t.Fatal(elTight.err, elLax.err)
	}
	costs := sess.arb.CostByQuery()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Conservation per query: every chunk committed exactly once across
	// static AND burst sites, every unit folded exactly once.
	tightJobs, tightBurst := countJobs(elTight.reports)
	laxJobs, laxBurst := countJobs(elLax.reports)
	if tightJobs != ix.NumChunks() {
		t.Errorf("tight query committed %d jobs, want %d", tightJobs, ix.NumChunks())
	}
	if laxJobs != ix.NumChunks() {
		t.Errorf("lax query committed %d jobs, want %d", laxJobs, ix.NumChunks())
	}
	for _, r := range []queryRun{elTight, elLax} {
		if got := r.obj.(*apps.HistogramObject).Total(); got != ix.TotalUnits() {
			t.Errorf("elastic query folded %d units, want %d", got, ix.TotalUnits())
		}
	}

	// Byte-identical results against the sequential static runs.
	if !bytes.Equal(encode(eT, elTight.obj), staticTightBytes) {
		t.Errorf("tight query's reduction object differs from its sequential static run")
	}
	if !bytes.Equal(encode(eL, elLax.obj), staticLaxBytes) {
		t.Errorf("lax query's reduction object differs from its sequential static run")
	}

	// One shared fleet served both queries: the arbiter scaled up at least
	// once, burst workers contributed to BOTH queries' reductions, and the
	// fleet was fully drained by session close.
	snap := o.Registry.Snapshot()
	ups, workersLeft := int64(0), int64(0)
	for k, v := range snap {
		if strings.HasPrefix(k, "elastic_scale_events_total") && strings.Contains(k, `dir="up"`) {
			ups += v
		}
		if strings.HasPrefix(k, "elastic_workers") {
			workersLeft += v
		}
	}
	if ups == 0 {
		t.Errorf("no scale-up events recorded: %v", filterPrefix(snap, "elastic_"))
	}
	if workersLeft != 0 {
		t.Errorf("elastic_workers gauges nonzero after the run: %v", filterPrefix(snap, "elastic_workers"))
	}
	if tightBurst == 0 {
		t.Errorf("no burst worker contributed to the tight query")
	}
	if laxBurst == 0 {
		t.Errorf("no burst worker contributed to the lax query")
	}

	// Policy outcomes: the tight query met the deadline the static
	// concurrent baseline missed; the lax query stayed within its budget.
	if elTight.dur > deadline {
		t.Errorf("tight query took %v, missing the %v deadline the arbiter was steering at", elTight.dur, deadline)
	}
	if costs[laxID] > laxBudget {
		t.Errorf("lax query's attributed cost $%.6f exceeds its $%.2f budget", costs[laxID], laxBudget)
	}

	t.Logf("static %.0fms, static-concurrent tight %.0fms vs elastic tight %.0fms (deadline %.0fms); lax %.0fms at $%.6f; %d+%d burst contributors",
		float64(staticDur.Milliseconds()), float64(concTight.dur.Milliseconds()),
		float64(elTight.dur.Milliseconds()), float64(deadline.Milliseconds()),
		float64(elLax.dur.Milliseconds()), costs[laxID], tightBurst, laxBurst)
}
