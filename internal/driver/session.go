package driver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/head"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Client is the public entry point for running queries over a Deployment:
// it validates the deployment once and opens Sessions against it. The
// Deployment.RunOnce / Deployment.Iterate entry points are thin wrappers
// over the same path (one short-lived Session per call).
type Client struct {
	dep *Deployment
}

// NewClient validates d and returns a client for it.
func NewClient(d *Deployment) (*Client, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &Client{dep: d}, nil
}

// Open starts a live session: a multi-query head plus one long-lived agent
// per cluster, all in-process. The clusters register once and then serve
// every query submitted through the session, concurrently, under the head's
// weighted fair share. Close the session to release the agents.
func (c *Client) Open() (*Session, error) {
	return newSession(c.dep)
}

// Session is a running deployment accepting concurrent queries. Submit
// admits a query and returns immediately; each Query is waited on (or
// canceled) independently. Sessions are safe for concurrent use.
type Session struct {
	dep       *Deployment
	h         *head.Head
	logf      func(string, ...any)
	ctx       context.Context
	cancel    context.CancelFunc
	agents    sync.WaitGroup
	debug     *http.Server
	debugAddr net.Addr

	// Elastic state (set only when Deployment.Elastic is non-nil): one
	// session-wide arbiter sizes the shared burst fleet for every admitted
	// query; arbStop asks its loop to decommission the fleet and exit, and
	// arbDone closes when it has.
	launcher cluster.Launcher
	arb      *elastic.Arbiter
	arbStop  chan struct{}
	arbDone  chan struct{}

	mu            sync.Mutex
	agentErr      error
	closed        bool
	nextBurstSite int
}

// DebugAddr returns the bound address of the session's debug HTTP server,
// or nil when the deployment did not set Deployment.DebugAddr. With
// Deployment.DebugAddr ":0" this is how callers discover the chosen port.
func (s *Session) DebugAddr() net.Addr { return s.debugAddr }

// NewSession validates d and opens a live session over it; shorthand for
// NewClient(d) followed by Open.
func NewSession(d *Deployment) (*Session, error) {
	c, err := NewClient(d)
	if err != nil {
		return nil, err
	}
	return c.Open()
}

func newSession(d *Deployment) (*Session, error) {
	logf := d.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h, err := head.New(head.Config{
		ExpectClusters: len(d.Clusters),
		Logf:           logf,
		Obs:            d.Obs,
		Tuning:         d.Tuning,
		DynamicSites:   d.Elastic != nil,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Session{dep: d, h: h, logf: logf, cancel: cancel, ctx: ctx}
	if d.Elastic != nil {
		s.nextBurstSite = d.Elastic.SiteBase
		if s.nextBurstSite <= 0 {
			s.nextBurstSite = elastic.DefaultWorkerSiteBase
		}
		s.launcher = d.Elastic.Launcher
		if s.launcher == nil {
			w := d.Elastic.Worker
			s.launcher = &cluster.AgentLauncher{Template: cluster.AgentConfig{
				Cores:            w.Cores,
				RetrievalThreads: w.RetrievalThreads,
				Tuning:           d.Tuning,
				Sources:          w.Sources,
				SourceLabels:     w.SourceLabels,
				Head:             cluster.InProcAgent{Head: h},
				Retry:            w.Retry,
				Logf:             logf,
				Obs:              d.Obs,
			}}
		}
		arb, err := elastic.NewArbiter(d.Elastic.Arbiter, &d.Elastic.Env)
		if err != nil {
			h.Shutdown()
			cancel()
			return nil, err
		}
		s.arb = arb
		s.arbStop = make(chan struct{})
		s.arbDone = make(chan struct{})
		go s.runArbiter()
	}
	if d.DebugAddr != "" {
		srv, addr, err := obs.ServeDebug(d.DebugAddr, d.Obs.Metrics(), d.Obs.Trace())
		if err != nil {
			h.Shutdown()
			cancel()
			return nil, err
		}
		s.debug, s.debugAddr = srv, addr
		logf("driver: debug endpoints on http://%s/debug/", addr)
	}
	for _, cs := range d.Clusters {
		s.agents.Add(1)
		go func(cs ClusterSpec) {
			defer s.agents.Done()
			err := cluster.RunAgent(ctx, cluster.AgentConfig{
				Site:             cs.Site,
				Name:             cs.Name,
				Cores:            cs.Cores,
				RetrievalThreads: cs.RetrievalThreads,
				Tuning:           d.Tuning,
				Sources:          cs.Sources,
				SourceLabels:     cs.SourceLabels,
				Head:             cluster.InProcAgent{Head: h},
				Retry:            cs.Retry,
				Logf:             logf,
				Obs:              d.Obs,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				s.mu.Lock()
				if s.agentErr == nil {
					s.agentErr = fmt.Errorf("driver: cluster %s: %w", cs.Name, err)
				}
				s.mu.Unlock()
				h.SiteLost(cs.Site, err)
			}
		}(cs)
	}
	return s, nil
}

// Submit admits one query into the session and returns a handle to it. The
// query starts competing for the shared clusters immediately, interleaved
// with every other active query by weighted fair share.
func (s *Session) Submit(step Step) (*Query, error) {
	if step.Reducer == nil {
		return nil, errors.New("driver: Step.Reducer is required")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("driver: session closed")
	}
	s.mu.Unlock()
	d := s.dep
	placement := d.Placement
	if step.Placement != nil {
		if err := step.Placement.Validate(d.Index); err != nil {
			return nil, err
		}
		placement = step.Placement
	}
	poolOpts := d.PoolOpts
	if step.PoolOpts != nil {
		poolOpts = *step.PoolOpts
	}
	pool, err := jobs.NewPool(d.Index, placement, poolOpts)
	if err != nil {
		return nil, err
	}
	spec := protocol.JobSpec{
		App:        step.App,
		Params:     step.Params,
		UnitSize:   d.Index.UnitSize,
		GroupBytes: d.Tuning.GroupBytes,
	}
	if err := head.EncodeIndexSpec(&spec, d.Index); err != nil {
		return nil, err
	}
	if step.Elastic != nil {
		if d.Elastic == nil {
			return nil, errors.New("driver: Step.Elastic requires Deployment.Elastic")
		}
	}
	hq, err := s.h.Admit(head.QueryConfig{
		Pool:    pool,
		Reducer: step.Reducer,
		Spec:    spec,
		Weight:  step.Weight,
		Policy:  step.Elastic,
		// Every cluster reports each query (possibly an identity object), so
		// RunOnce-parity report counts hold for every submitted query —
		// except in elastic deployments, where the shared burst fleet may
		// contribute to (and be drained away from) any query, so completion
		// must not wait on workers that already departed (the contributor
		// rule covers the survivors).
		ExpectAll: d.Elastic == nil,
	})
	if err != nil {
		return nil, err
	}
	return &Query{s: s, q: hq}, nil
}

// Iterate runs rounds over the live session until next returns a nil Step or
// maxRounds is reached, honoring ctx between and during rounds: when ctx
// expires mid-round the in-flight query is canceled before returning, so no
// goroutines or job leases are left behind. Unlike Deployment.Iterate, the
// clusters register once for the whole sequence.
func (s *Session) Iterate(ctx context.Context, maxRounds int, next func(round int, prev core.Object) (*Step, error)) (core.Object, []RoundReport, error) {
	if maxRounds <= 0 {
		return nil, nil, fmt.Errorf("driver: maxRounds must be positive, got %d", maxRounds)
	}
	var (
		prev    core.Object
		reports []RoundReport
	)
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, reports, err
		}
		step, err := next(round, prev)
		if err != nil {
			return nil, reports, err
		}
		if step == nil {
			break
		}
		q, err := s.Submit(*step)
		if err != nil {
			return nil, reports, fmt.Errorf("driver: round %d: %w", round, err)
		}
		obj, clusterReports, err := q.Wait(ctx)
		if err != nil {
			if ctx.Err() != nil {
				q.Cancel() // release the round's jobs and engines
			}
			return nil, reports, fmt.Errorf("driver: round %d: %w", round, err)
		}
		prev = obj
		reports = append(reports, RoundReport{Round: round, Object: obj, Reports: clusterReports})
	}
	if prev == nil {
		return nil, nil, errors.New("driver: no rounds executed")
	}
	return prev, reports, nil
}

// Close shuts the session down: active queries fail with head.ErrShutdown,
// the agents exit, and their goroutines are joined. Returns the first agent
// error observed during the session's lifetime, if any.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.agents.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.debug != nil {
		_ = s.debug.Close()
	}
	s.h.Shutdown()
	// Let the arbiter loop finish its graceful teardown (drain the burst
	// fleet, settle gauges) before pulling the context: arbStop tells it the
	// session is over, and finishArbiter bounds every wait with the drain
	// grace timer.
	if s.arb != nil {
		close(s.arbStop)
		<-s.arbDone
	}
	s.cancel()
	s.agents.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agentErr
}

// Query is a handle to one submitted query.
type Query struct {
	s *Session
	q *head.Query
}

// ID returns the head-assigned query identifier (also the value of the
// query="<id>" label on the head's per-query metric series).
func (q *Query) ID() int { return q.q.ID() }

// Policy returns a copy of the elasticity policy this query runs under
// (after session-default inheritance), or nil for a policy-free query.
func (q *Query) Policy() *elastic.Policy { return q.q.Policy() }

// Wait blocks until the query completes, fails, is canceled, or ctx
// expires, and returns the final reduction object with per-cluster reports.
func (q *Query) Wait(ctx context.Context) (core.Object, []head.ClusterReport, error) {
	obj, reports, _, err := q.q.Wait(ctx)
	if err != nil {
		q.s.mu.Lock()
		agentErr := q.s.agentErr
		q.s.mu.Unlock()
		if agentErr != nil && ctx.Err() == nil {
			return nil, nil, agentErr
		}
		return nil, nil, err
	}
	return obj, reports, nil
}

// Cancel withdraws the query: clusters discard its state on their next poll
// and Wait returns head.ErrQueryCanceled. Canceling a finished query is a
// no-op.
func (q *Query) Cancel() { q.q.Cancel() }
