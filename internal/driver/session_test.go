package driver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/head"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workload"
)

// mixedSteps builds one Step per application over dim-2 points, with fresh
// reducers per call (reducers accumulate state and must not be shared
// between runs). The returned encoders re-encode a final object for
// byte-level comparison.
func mixedSteps(t *testing.T) ([]Step, []func(core.Object) []byte) {
	t.Helper()
	var steps []Step
	var encs []func(core.Object) []byte

	hp := apps.HistogramParams{Bins: 8, Dim: 2}
	hparams, err := apps.EncodeHistogramParams(hp)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := apps.NewHistogramReducer(hp)
	if err != nil {
		t.Fatal(err)
	}
	steps = append(steps, Step{App: apps.HistogramReducerName, Params: hparams, Reducer: hr})
	encs = append(encs, func(o core.Object) []byte {
		b, err := hr.Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})

	kp := apps.KNNParams{K: 10, Dim: 2, Query: []float64{0.5, 0.5}}
	kparams, err := apps.EncodeKNNParams(kp)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := apps.NewKNNReducer(kp)
	if err != nil {
		t.Fatal(err)
	}
	steps = append(steps, Step{App: apps.KNNReducerName, Params: kparams, Reducer: kr})
	encs = append(encs, func(o core.Object) []byte {
		b, err := kr.Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})

	mp := apps.KMeansParams{K: 3, Dim: 2, Centers: [][]float64{{0.2, 0.2}, {0.5, 0.5}, {0.8, 0.8}}}
	mparams, err := apps.EncodeKMeansParams(mp)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := apps.NewKMeansReducer(mp)
	if err != nil {
		t.Fatal(err)
	}
	steps = append(steps, Step{App: apps.KMeansReducerName, Params: mparams, Reducer: mr})
	encs = append(encs, func(o core.Object) []byte {
		b, err := mr.Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
	return steps, encs
}

// TestConcurrentMixedQueriesBitIdentical is the tentpole acceptance drill:
// three queries of three different applications run concurrently over ONE
// live session — one head, one registration and wire session per cluster —
// and each produces the same result as its own sequential RunOnce over the
// same deployment, with per-query reports and metrics fully isolated.
//
// Histogram (integer counts) and kNN (min-k selection) are
// partition-invariant, so their results are compared byte-for-byte. K-means
// accumulates float sums, whose bit pattern legitimately depends on fold
// order even between two sequential runs; its counts are compared exactly
// and its sums within floating-point slack.
func TestConcurrentMixedQueriesBitIdentical(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 42, Dim: 2, K: 3, Spread: 0.05}
	d, _ := buildPointDeployment(t, gen, 1500)

	// Sequential reference: one query at a time, each over a fresh session.
	seqSteps, seqEncs := mixedSteps(t)
	refs := make([][]byte, len(seqSteps))
	refObjs := make([]core.Object, len(seqSteps))
	for i, s := range seqSteps {
		obj, reports, err := d.RunOnce(s)
		if err != nil {
			t.Fatalf("sequential %s: %v", s.App, err)
		}
		if len(reports) != 2 {
			t.Fatalf("sequential %s reports = %d, want 2", s.App, len(reports))
		}
		refs[i] = seqEncs[i](obj)
		refObjs[i] = obj
	}

	// Concurrent: all three admitted into one session, racing for the same
	// two clusters under fair share.
	d.Obs = obs.New(nil)
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	conSteps, conEncs := mixedSteps(t)
	queries := make([]*Query, len(conSteps))
	for i, s := range conSteps {
		if queries[i], err = sess.Submit(s); err != nil {
			t.Fatalf("submit %s: %v", s.App, err)
		}
	}
	var wg sync.WaitGroup
	objs := make([]core.Object, len(queries))
	allReports := make([][]head.ClusterReport, len(queries))
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *Query) {
			defer wg.Done()
			objs[i], allReports[i], errs[i] = q.Wait(context.Background())
		}(i, q)
	}
	wg.Wait()
	for i, s := range conSteps {
		if errs[i] != nil {
			t.Fatalf("concurrent %s: %v", s.App, errs[i])
		}
		// Per-query stats isolation: every query saw both clusters and
		// exactly the full job count — no cross-query bleed.
		if len(allReports[i]) != 2 {
			t.Errorf("%s reports = %d, want 2", s.App, len(allReports[i]))
		}
		jobsTotal := 0
		for _, r := range allReports[i] {
			jobsTotal += r.Jobs.Total()
		}
		if jobsTotal != d.Index.NumChunks() {
			t.Errorf("%s processed %d jobs, want %d", s.App, jobsTotal, d.Index.NumChunks())
		}
	}

	// Bit-identity for the partition-invariant apps.
	for _, i := range []int{0, 1} {
		if got := conEncs[i](objs[i]); !bytes.Equal(got, refs[i]) {
			t.Errorf("%s: concurrent result differs from sequential (%d vs %d bytes)",
				conSteps[i].App, len(got), len(refs[i]))
		}
	}
	// K-means: exact counts, near-exact sums.
	ref := refObjs[2].(*apps.KMeansObject)
	got := objs[2].(*apps.KMeansObject)
	for c := range ref.Counts {
		if got.Counts[c] != ref.Counts[c] {
			t.Errorf("kmeans center %d count = %d, want %d", c, got.Counts[c], ref.Counts[c])
		}
		for j := range ref.Sums[c] {
			if diff := math.Abs(got.Sums[c][j] - ref.Sums[c][j]); diff > 1e-9*math.Abs(ref.Sums[c][j]) {
				t.Errorf("kmeans sum[%d][%d] = %v, want %v", c, j, got.Sums[c][j], ref.Sums[c][j])
			}
		}
	}

	// Per-query metrics isolation: each query's own counters carry exactly
	// its jobs and its two cluster results.
	snap := d.Obs.Registry.Snapshot()
	for i := range queries {
		id := queries[i].ID()
		if n := snap[fmt.Sprintf("head_query_%d_jobs_granted_total", id)]; n != int64(d.Index.NumChunks()) {
			t.Errorf("query %d granted metric = %d, want %d", id, n, d.Index.NumChunks())
		}
		if n := snap[fmt.Sprintf("head_query_%d_results_total", id)]; n != 2 {
			t.Errorf("query %d results metric = %d, want 2", id, n)
		}
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// slowSource delays every read, giving cancellation something to interrupt.
type slowSource struct {
	inner chunk.Source
	delay time.Duration
}

func (s slowSource) ReadChunk(ref chunk.Ref) ([]byte, error) {
	time.Sleep(s.delay)
	return s.inner.ReadChunk(ref)
}

// TestIterateCancelMidRound: Session.Iterate honors context cancellation
// during a round — the in-flight query is withdrawn, its leases and engines
// released, and the session stays usable for the next query. Close joins
// every agent goroutine, so a leak would hang the test.
func TestIterateCancelMidRound(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 5, Dim: 2, K: 2, Spread: 0.1}
	d, src := buildPointDeployment(t, gen, 1000)
	slow := slowSource{inner: src, delay: 2 * time.Millisecond}
	for i := range d.Clusters {
		d.Clusters[i].Sources = map[int]chunk.Source{0: slow, 1: slow}
	}
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, err := apps.EncodeHistogramParams(p)
	if err != nil {
		t.Fatal(err)
	}
	step := func() *Step {
		r, err := apps.NewHistogramReducer(p)
		if err != nil {
			t.Fatal(err)
		}
		return &Step{App: apps.HistogramReducerName, Params: params, Reducer: r}
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond) // mid-round: ~40 jobs × 2ms/read
		cancel()
	}()
	_, _, err = sess.Iterate(ctx, 50, func(round int, prev core.Object) (*Step, error) {
		return step(), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Iterate = %v, want context.Canceled", err)
	}

	// The canceled round released its jobs: a fresh query over the same
	// session runs to completion (leaked leases or a wedged agent would
	// starve or hang it).
	q, err := sess.Submit(*step())
	if err != nil {
		t.Fatal(err)
	}
	obj, _, err := q.Wait(context.Background())
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if got := obj.(*apps.HistogramObject).Total(); got != d.Index.TotalUnits() {
		t.Errorf("total after cancel = %d, want %d", got, d.Index.TotalUnits())
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestIterateCancelBetweenRounds: a context canceled at a round boundary
// stops before submitting the next round.
func TestIterateCancelBetweenRounds(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 6, Dim: 2, K: 2, Spread: 0.1}
	d, _ := buildPointDeployment(t, gen, 500)
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, _ := apps.EncodeHistogramParams(p)
	rounds := 0
	_, _, err = sess.Iterate(ctx, 10, func(round int, prev core.Object) (*Step, error) {
		rounds++
		if round == 1 {
			cancel() // cancel after round 0 completed; round 1's step still runs
		}
		r, err := apps.NewHistogramReducer(p)
		if err != nil {
			return nil, err
		}
		return &Step{App: apps.HistogramReducerName, Params: params, Reducer: r}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Iterate = %v, want context.Canceled", err)
	}
	if rounds > 2 {
		t.Errorf("next called %d times after cancel", rounds)
	}
}

// TestSubmitAfterCloseRejected: a closed session refuses new queries with a
// clear error instead of deadlocking.
func TestSubmitAfterCloseRejected(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 7, Dim: 2, K: 2, Spread: 0.1}
	d, _ := buildPointDeployment(t, gen, 500)
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, _ := apps.EncodeHistogramParams(p)
	r, err := apps.NewHistogramReducer(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Submit(Step{App: apps.HistogramReducerName, Params: params, Reducer: r}); err == nil {
		t.Error("Submit on closed session accepted")
	}
}

// TestQueryCancelReleasesOthers: canceling one of two concurrent queries
// leaves the other to finish with the full dataset.
func TestQueryCancelReleasesOthers(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 9, Dim: 2, K: 2, Spread: 0.1}
	d, src := buildPointDeployment(t, gen, 1000)
	slow := slowSource{inner: src, delay: time.Millisecond}
	for i := range d.Clusters {
		d.Clusters[i].Sources = map[int]chunk.Source{0: slow, 1: slow}
	}
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, _ := apps.EncodeHistogramParams(p)
	newStep := func() Step {
		r, err := apps.NewHistogramReducer(p)
		if err != nil {
			t.Fatal(err)
		}
		return Step{App: apps.HistogramReducerName, Params: params, Reducer: r}
	}
	victim, err := sess.Submit(newStep())
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := sess.Submit(newStep())
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if _, _, err := victim.Wait(context.Background()); !errors.Is(err, head.ErrQueryCanceled) {
		t.Errorf("victim Wait = %v, want ErrQueryCanceled", err)
	}
	obj, _, err := survivor.Wait(context.Background())
	if err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if got := obj.(*apps.HistogramObject).Total(); got != d.Index.TotalUnits() {
		t.Errorf("survivor total = %d, want %d", got, d.Index.TotalUnits())
	}
}

// TestSubmitWeightValidation exercises the façade's pool override plumbing.
func TestSubmitOverrides(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 11, Dim: 2, K: 2, Spread: 0.1}
	d, _ := buildPointDeployment(t, gen, 600)
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, _ := apps.EncodeHistogramParams(p)
	r, err := apps.NewHistogramReducer(p)
	if err != nil {
		t.Fatal(err)
	}
	// Per-step placement: everything at site 0, stealing off — only the
	// site-0 cluster reports folds.
	placement := make(jobs.Placement, len(d.Index.Files))
	q, err := sess.Submit(Step{
		App: apps.HistogramReducerName, Params: params, Reducer: r,
		Placement: placement,
		PoolOpts:  &jobs.Options{DisableStealing: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	obj, reports, err := q.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.(*apps.HistogramObject).Total(); got != d.Index.TotalUnits() {
		t.Errorf("total = %d, want %d", got, d.Index.TotalUnits())
	}
	for _, rep := range reports {
		if rep.Site == 1 && rep.Jobs.Total() != 0 {
			t.Errorf("site 1 processed %d jobs despite site-0 placement with stealing off", rep.Jobs.Total())
		}
	}
}
