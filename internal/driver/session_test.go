package driver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/chunk"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/head"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workload"
)

// mixedSteps builds one Step per application over dim-2 points, with fresh
// reducers per call (reducers accumulate state and must not be shared
// between runs). The returned encoders re-encode a final object for
// byte-level comparison.
func mixedSteps(t *testing.T) ([]Step, []func(core.Object) []byte) {
	t.Helper()
	var steps []Step
	var encs []func(core.Object) []byte

	hp := apps.HistogramParams{Bins: 8, Dim: 2}
	hparams, err := apps.EncodeHistogramParams(hp)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := apps.NewHistogramReducer(hp)
	if err != nil {
		t.Fatal(err)
	}
	steps = append(steps, Step{App: apps.HistogramReducerName, Params: hparams, Reducer: hr})
	encs = append(encs, func(o core.Object) []byte {
		b, err := hr.Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})

	kp := apps.KNNParams{K: 10, Dim: 2, Query: []float64{0.5, 0.5}}
	kparams, err := apps.EncodeKNNParams(kp)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := apps.NewKNNReducer(kp)
	if err != nil {
		t.Fatal(err)
	}
	steps = append(steps, Step{App: apps.KNNReducerName, Params: kparams, Reducer: kr})
	encs = append(encs, func(o core.Object) []byte {
		b, err := kr.Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})

	mp := apps.KMeansParams{K: 3, Dim: 2, Centers: [][]float64{{0.2, 0.2}, {0.5, 0.5}, {0.8, 0.8}}}
	mparams, err := apps.EncodeKMeansParams(mp)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := apps.NewKMeansReducer(mp)
	if err != nil {
		t.Fatal(err)
	}
	steps = append(steps, Step{App: apps.KMeansReducerName, Params: mparams, Reducer: mr})
	encs = append(encs, func(o core.Object) []byte {
		b, err := mr.Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
	return steps, encs
}

// TestConcurrentMixedQueriesBitIdentical is the tentpole acceptance drill:
// three queries of three different applications run concurrently over ONE
// live session — one head, one registration and wire session per cluster —
// and each produces the same result as its own sequential RunOnce over the
// same deployment, with per-query reports and metrics fully isolated.
//
// Histogram (integer counts) and kNN (min-k selection) are
// partition-invariant, so their results are compared byte-for-byte. K-means
// accumulates float sums, whose bit pattern legitimately depends on fold
// order even between two sequential runs; its counts are compared exactly
// and its sums within floating-point slack.
func TestConcurrentMixedQueriesBitIdentical(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 42, Dim: 2, K: 3, Spread: 0.05}
	d, _ := buildPointDeployment(t, gen, 1500)

	// Sequential reference: one query at a time, each over a fresh session.
	seqSteps, seqEncs := mixedSteps(t)
	refs := make([][]byte, len(seqSteps))
	refObjs := make([]core.Object, len(seqSteps))
	for i, s := range seqSteps {
		obj, reports, err := d.RunOnce(s)
		if err != nil {
			t.Fatalf("sequential %s: %v", s.App, err)
		}
		if len(reports) != 2 {
			t.Fatalf("sequential %s reports = %d, want 2", s.App, len(reports))
		}
		refs[i] = seqEncs[i](obj)
		refObjs[i] = obj
	}

	// Concurrent: all three admitted into one session, racing for the same
	// two clusters under fair share.
	d.Obs = obs.New(nil)
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	conSteps, conEncs := mixedSteps(t)
	queries := make([]*Query, len(conSteps))
	for i, s := range conSteps {
		if queries[i], err = sess.Submit(s); err != nil {
			t.Fatalf("submit %s: %v", s.App, err)
		}
	}
	var wg sync.WaitGroup
	objs := make([]core.Object, len(queries))
	allReports := make([][]head.ClusterReport, len(queries))
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *Query) {
			defer wg.Done()
			objs[i], allReports[i], errs[i] = q.Wait(context.Background())
		}(i, q)
	}
	wg.Wait()
	for i, s := range conSteps {
		if errs[i] != nil {
			t.Fatalf("concurrent %s: %v", s.App, errs[i])
		}
		// Per-query stats isolation: every query saw both clusters and
		// exactly the full job count — no cross-query bleed.
		if len(allReports[i]) != 2 {
			t.Errorf("%s reports = %d, want 2", s.App, len(allReports[i]))
		}
		jobsTotal := 0
		for _, r := range allReports[i] {
			jobsTotal += r.Jobs.Total()
		}
		if jobsTotal != d.Index.NumChunks() {
			t.Errorf("%s processed %d jobs, want %d", s.App, jobsTotal, d.Index.NumChunks())
		}
	}

	// Bit-identity for the partition-invariant apps.
	for _, i := range []int{0, 1} {
		if got := conEncs[i](objs[i]); !bytes.Equal(got, refs[i]) {
			t.Errorf("%s: concurrent result differs from sequential (%d vs %d bytes)",
				conSteps[i].App, len(got), len(refs[i]))
		}
	}
	// K-means: exact counts, near-exact sums.
	ref := refObjs[2].(*apps.KMeansObject)
	got := objs[2].(*apps.KMeansObject)
	for c := range ref.Counts {
		if got.Counts[c] != ref.Counts[c] {
			t.Errorf("kmeans center %d count = %d, want %d", c, got.Counts[c], ref.Counts[c])
		}
		for j := range ref.Sums[c] {
			if diff := math.Abs(got.Sums[c][j] - ref.Sums[c][j]); diff > 1e-9*math.Abs(ref.Sums[c][j]) {
				t.Errorf("kmeans sum[%d][%d] = %v, want %v", c, j, got.Sums[c][j], ref.Sums[c][j])
			}
		}
	}

	// Per-query metrics isolation: each query's own counters carry exactly
	// its jobs and its two cluster results.
	snap := d.Obs.Registry.Snapshot()
	for i := range queries {
		id := queries[i].ID()
		if n := snap[fmt.Sprintf(`head_query_jobs_granted_total{query="%d"}`, id)]; n != int64(d.Index.NumChunks()) {
			t.Errorf("query %d granted metric = %d, want %d", id, n, d.Index.NumChunks())
		}
		if n := snap[fmt.Sprintf(`head_query_results_total{query="%d"}`, id)]; n != 2 {
			t.Errorf("query %d results metric = %d, want 2", id, n)
		}
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// slowSource delays every read, giving cancellation something to interrupt.
type slowSource struct {
	inner chunk.Source
	delay time.Duration
}

func (s slowSource) ReadChunk(ref chunk.Ref) ([]byte, error) {
	time.Sleep(s.delay)
	return s.inner.ReadChunk(ref)
}

// TestIterateCancelMidRound: Session.Iterate honors context cancellation
// during a round — the in-flight query is withdrawn, its leases and engines
// released, and the session stays usable for the next query. Close joins
// every agent goroutine, so a leak would hang the test.
func TestIterateCancelMidRound(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 5, Dim: 2, K: 2, Spread: 0.1}
	d, src := buildPointDeployment(t, gen, 1000)
	slow := slowSource{inner: src, delay: 2 * time.Millisecond}
	for i := range d.Clusters {
		d.Clusters[i].Sources = map[int]chunk.Source{0: slow, 1: slow}
	}
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, err := apps.EncodeHistogramParams(p)
	if err != nil {
		t.Fatal(err)
	}
	step := func() *Step {
		r, err := apps.NewHistogramReducer(p)
		if err != nil {
			t.Fatal(err)
		}
		return &Step{App: apps.HistogramReducerName, Params: params, Reducer: r}
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond) // mid-round: ~40 jobs × 2ms/read
		cancel()
	}()
	_, _, err = sess.Iterate(ctx, 50, func(round int, prev core.Object) (*Step, error) {
		return step(), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Iterate = %v, want context.Canceled", err)
	}

	// The canceled round released its jobs: a fresh query over the same
	// session runs to completion (leaked leases or a wedged agent would
	// starve or hang it).
	q, err := sess.Submit(*step())
	if err != nil {
		t.Fatal(err)
	}
	obj, _, err := q.Wait(context.Background())
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if got := obj.(*apps.HistogramObject).Total(); got != d.Index.TotalUnits() {
		t.Errorf("total after cancel = %d, want %d", got, d.Index.TotalUnits())
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestIterateCancelBetweenRounds: a context canceled at a round boundary
// stops before submitting the next round.
func TestIterateCancelBetweenRounds(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 6, Dim: 2, K: 2, Spread: 0.1}
	d, _ := buildPointDeployment(t, gen, 500)
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, _ := apps.EncodeHistogramParams(p)
	rounds := 0
	_, _, err = sess.Iterate(ctx, 10, func(round int, prev core.Object) (*Step, error) {
		rounds++
		if round == 1 {
			cancel() // cancel after round 0 completed; round 1's step still runs
		}
		r, err := apps.NewHistogramReducer(p)
		if err != nil {
			return nil, err
		}
		return &Step{App: apps.HistogramReducerName, Params: params, Reducer: r}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Iterate = %v, want context.Canceled", err)
	}
	if rounds > 2 {
		t.Errorf("next called %d times after cancel", rounds)
	}
}

// TestSubmitAfterCloseRejected: a closed session refuses new queries with a
// clear error instead of deadlocking.
func TestSubmitAfterCloseRejected(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 7, Dim: 2, K: 2, Spread: 0.1}
	d, _ := buildPointDeployment(t, gen, 500)
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, _ := apps.EncodeHistogramParams(p)
	r, err := apps.NewHistogramReducer(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Submit(Step{App: apps.HistogramReducerName, Params: params, Reducer: r}); err == nil {
		t.Error("Submit on closed session accepted")
	}
}

// TestQueryCancelReleasesOthers: canceling one of two concurrent queries
// leaves the other to finish with the full dataset.
func TestQueryCancelReleasesOthers(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 9, Dim: 2, K: 2, Spread: 0.1}
	d, src := buildPointDeployment(t, gen, 1000)
	slow := slowSource{inner: src, delay: time.Millisecond}
	for i := range d.Clusters {
		d.Clusters[i].Sources = map[int]chunk.Source{0: slow, 1: slow}
	}
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, _ := apps.EncodeHistogramParams(p)
	newStep := func() Step {
		r, err := apps.NewHistogramReducer(p)
		if err != nil {
			t.Fatal(err)
		}
		return Step{App: apps.HistogramReducerName, Params: params, Reducer: r}
	}
	victim, err := sess.Submit(newStep())
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := sess.Submit(newStep())
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if _, _, err := victim.Wait(context.Background()); !errors.Is(err, head.ErrQueryCanceled) {
		t.Errorf("victim Wait = %v, want ErrQueryCanceled", err)
	}
	obj, _, err := survivor.Wait(context.Background())
	if err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if got := obj.(*apps.HistogramObject).Total(); got != d.Index.TotalUnits() {
		t.Errorf("survivor total = %d, want %d", got, d.Index.TotalUnits())
	}
}

// TestSubmitWeightValidation exercises the façade's pool override plumbing.
func TestSubmitOverrides(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 11, Dim: 2, K: 2, Spread: 0.1}
	d, _ := buildPointDeployment(t, gen, 600)
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p := apps.HistogramParams{Bins: 4, Dim: 2}
	params, _ := apps.EncodeHistogramParams(p)
	r, err := apps.NewHistogramReducer(p)
	if err != nil {
		t.Fatal(err)
	}
	// Per-step placement: everything at site 0, stealing off — only the
	// site-0 cluster reports folds.
	placement := make(jobs.Placement, len(d.Index.Files))
	q, err := sess.Submit(Step{
		App: apps.HistogramReducerName, Params: params, Reducer: r,
		Placement: placement,
		PoolOpts:  &jobs.Options{DisableStealing: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	obj, reports, err := q.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.(*apps.HistogramObject).Total(); got != d.Index.TotalUnits() {
		t.Errorf("total = %d, want %d", got, d.Index.TotalUnits())
	}
	for _, rep := range reports {
		if rep.Site == 1 && rep.Jobs.Total() != 0 {
			t.Errorf("site 1 processed %d jobs despite site-0 placement with stealing off", rep.Jobs.Total())
		}
	}
}

// TestLiveMergedTraceAndDebugMetrics is the observability acceptance drill:
// three queries run concurrently over two live sites with tracing on and the
// debug HTTP surface bound to an ephemeral port. Afterwards, (a) the
// Prometheus exposition at /debug/metrics carries query/site-labeled
// jobs-done counters agreeing exactly with the per-query cluster reports,
// and (b) the merged trace holds, for every completed job, a head-side
// grant span and a master-side process span sharing the query's TraceID.
func TestLiveMergedTraceAndDebugMetrics(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 9, Dim: 2, K: 3, Spread: 0.05}
	d, _ := buildPointDeployment(t, gen, 1500)
	d.Obs = obs.New(nil)
	d.Obs.Tracer.Enable()
	d.DebugAddr = "127.0.0.1:0"
	defer func() { dumpTraceOnFailure(t, d.Obs) }()

	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	steps, _ := mixedSteps(t)
	queries := make([]*Query, len(steps))
	for i, s := range steps {
		if queries[i], err = sess.Submit(s); err != nil {
			t.Fatalf("submit %s: %v", s.App, err)
		}
	}
	allReports := make([][]head.ClusterReport, len(queries))
	for i, q := range queries {
		if _, allReports[i], err = q.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", steps[i].App, err)
		}
	}

	// (a) Scrape the live Prometheus endpoint and reconcile the labeled
	// counters against what each query's reports claim per site.
	resp, err := http.Get("http://" + sess.DebugAddr().String() + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promText, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	promDone := map[string]int64{} // full sample line key → value
	for _, line := range strings.Split(string(promText), "\n") {
		if !strings.HasPrefix(line, "head_jobs_done_total{") {
			continue
		}
		key, val, ok := strings.Cut(line, "} ")
		if !ok {
			t.Fatalf("unparseable sample %q", line)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		promDone[key+"}"] = n
	}
	for i, reports := range allReports {
		for _, r := range reports {
			key := fmt.Sprintf(`head_jobs_done_total{query="%d",site="%d"}`, queries[i].ID(), r.Site)
			if got := promDone[key]; got != int64(r.Jobs.Total()) {
				t.Errorf("%s = %d, want %d (report for site %d)", key, got, r.Jobs.Total(), r.Site)
			}
		}
	}

	// (b) Every completed job appears in the merged trace twice under its
	// query's TraceID: once in a pid-0 grant span, once in a master-side
	// process span from the site that ran it.
	var buf bytes.Buffer
	if err := d.Obs.Tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid merged trace: %v", err)
	}
	type tj struct {
		trace float64
		job   int
	}
	granted := map[tj]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name != "grant" {
			continue
		}
		if ev.PID != 0 {
			t.Fatalf("grant span on pid %d, want head pid 0", ev.PID)
		}
		tid, _ := ev.Args["trace"].(float64)
		ids, _ := ev.Args["jobs"].([]any)
		for _, id := range ids {
			granted[tj{tid, int(id.(float64))}] = true
		}
	}
	processed := map[float64]map[int]bool{} // trace id → job set
	for _, ev := range doc.TraceEvents {
		if ev.Name != "process" {
			continue
		}
		tid, _ := ev.Args["trace"].(float64)
		job := int(ev.Args["job"].(float64))
		site := int(ev.Args["site"].(float64))
		if ev.PID != site+1 {
			t.Errorf("process span for site %d on pid %d, want %d", site, ev.PID, site+1)
		}
		if !granted[tj{tid, job}] {
			t.Errorf("process span (trace %v, job %d) has no grant span sharing its TraceID", tid, job)
		}
		if processed[tid] == nil {
			processed[tid] = map[int]bool{}
		}
		processed[tid][job] = true
	}
	for i, q := range queries {
		tid := float64(q.ID() + 1) // live TraceID = query id + 1
		if got := len(processed[tid]); got != d.Index.NumChunks() {
			t.Errorf("%s: %d distinct jobs carry process spans under trace %v, want %d",
				steps[i].App, got, tid, d.Index.NumChunks())
		}
	}
}

// TestLiveWatchdogFlagsSlowSite injects a retrieval tarpit at one site of a
// live two-site session; the head's latency watchdog must flag that site —
// visible as a labeled straggler counter — and speculate its in-flight jobs
// without corrupting the query result.
func TestLiveWatchdogFlagsSlowSite(t *testing.T) {
	gen := workload.ClusteredPoints{Seed: 13, Dim: 2, K: 3, Spread: 0.05}

	step := func() Step {
		p := apps.HistogramParams{Bins: 8, Dim: 2}
		params, err := apps.EncodeHistogramParams(p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := apps.NewHistogramReducer(p)
		if err != nil {
			t.Fatal(err)
		}
		return Step{App: apps.HistogramReducerName, Params: params, Reducer: r}
	}

	// Reference result on a healthy deployment.
	ref, _ := buildPointDeployment(t, gen, 1500)
	refObj, _, err := ref.RunOnce(step())
	if err != nil {
		t.Fatal(err)
	}

	d, src := buildPointDeployment(t, gen, 1500)
	slow := map[int]chunk.Source{
		0: slowSource{inner: src, delay: 25 * time.Millisecond},
		1: slowSource{inner: src, delay: 25 * time.Millisecond},
	}
	d.Clusters[1].Sources = slow
	d.Obs = obs.New(nil)
	d.Obs.Tracer.Enable()
	defer func() { dumpTraceOnFailure(t, d.Obs) }()
	d.Tuning = config.Tuning{
		// Arm speculation but park the empty-pool timer: only the latency
		// watchdog can flag within this run.
		SpeculateAfter:  time.Hour,
		StragglerFactor: 3,
		// The tarpit site's two cores commit in pairs, so demand two
		// samples: the flag window is the gap between its first and second
		// wave, which the healthy site's polls straddle.
		WatchdogMinSamples: 2,
	}
	obj, reports, err := d.RunOnce(step())
	if err != nil {
		t.Fatal(err)
	}

	// Exactly-once reduction despite racing copies: the histogram is
	// partition-invariant, so the result matches the healthy run exactly.
	if got, want := obj.(*apps.HistogramObject).Total(), refObj.(*apps.HistogramObject).Total(); got != want {
		t.Errorf("slowed-run total = %d, want %d", got, want)
	}
	jobsTotal := 0
	for _, r := range reports {
		jobsTotal += r.Jobs.Total()
	}
	if jobsTotal != d.Index.NumChunks() {
		t.Errorf("folded %d jobs, want %d", jobsTotal, d.Index.NumChunks())
	}

	// The tarpit site was flagged (the healthy site may or may not trip the
	// threshold; the slow one must).
	snap := d.Obs.Registry.Snapshot()
	var flagged int64
	for k, v := range snap {
		if strings.HasPrefix(k, "head_straggler_flagged_total{") && strings.Contains(k, `site="1"`) {
			flagged += v
		}
	}
	if flagged == 0 {
		t.Errorf("slow site never flagged; straggler counters: %v", filterPrefix(snap, "head_straggler_flagged_total"))
	}
}

// dumpTraceOnFailure writes the session's merged trace into
// $TRACE_ARTIFACT_DIR when the test has failed, so CI can upload it as an
// artifact for span-level inspection. A no-op outside CI.
func dumpTraceOnFailure(t *testing.T, o *obs.Obs) {
	dir := os.Getenv("TRACE_ARTIFACT_DIR")
	if dir == "" || !t.Failed() || o == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("trace artifact dir: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := o.Tracer.WriteJSON(&buf); err != nil {
		t.Logf("rendering trace artifact: %v", err)
		return
	}
	path := filepath.Join(dir, t.Name()+".trace.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Logf("writing trace artifact: %v", err)
		return
	}
	t.Logf("merged trace written to %s", path)
}

// filterPrefix returns the snapshot entries whose key starts with prefix
// (for failure messages).
func filterPrefix(snap map[string]int64, prefix string) map[string]int64 {
	out := map[string]int64{}
	for k, v := range snap {
		if strings.HasPrefix(k, prefix) {
			out[k] = v
		}
	}
	return out
}
