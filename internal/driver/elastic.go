package driver

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/elastic"
	"repro/internal/obs"
)

// finalDrainGrace bounds the wait for burst workers to depart at session
// close, when the arbiter config sets no ScaleDownDrainTimeout. A healthy
// worker settles within two polls; a wedged one is declared failed so the
// session can close.
const finalDrainGrace = 30 * time.Second

// allocBurstSite hands out the next burst-worker site ID. IDs grow
// monotonically across the session and are never reused, so a zombie
// incarnation of a departed worker can never collide with a live one.
func (s *Session) allocBurstSite() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	site := s.nextBurstSite
	s.nextBurstSite++
	return site
}

// runArbiter is the session's one elasticity executor: every tick it
// snapshots each active query's remaining work from the head (with weight
// and policy) and feeds the aggregate to the arbiter, then acts on the one
// fleet-sizing decision — launching burst workers through the deployment's
// Launcher and draining them through the head's graceful decommission. The
// shared fleet serves every admitted query at once (the head's fair share
// splits the grants); the loop runs for the whole session and exits via
// arbStop after the head has shut down, decommissioning whatever is left.
func (s *Session) runArbiter() {
	defer close(s.arbDone)
	d := s.dep
	reg := d.Obs.Metrics()
	tr := d.Obs.Trace()
	cfg := s.arb.Config()
	gFleet := reg.Gauge("elastic_workers")
	cUp := reg.Counter("elastic_scale_events_total", "dir", "up")
	cDown := reg.Counter("elastic_scale_events_total", "dir", "down")
	gCost := reg.FloatGauge("elastic_cost_dollars")

	clk := d.Obs.ClockOrWall()
	start := clk.Now()
	since := func() time.Duration { return clk.Now() - start }

	ticker := time.NewTicker(cfg.EffectiveInterval())
	defer ticker.Stop()
	workers := make(map[int]*cluster.Worker)

	settle := func() {
		gCost.Set(s.arb.InstanceCost(since()))
		for id, c := range s.arb.CostByQuery() {
			reg.FloatGauge("elastic_cost_dollars", "query", strconv.Itoa(id)).Set(c)
		}
	}
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.arbStop:
			s.finishArbiter(workers, cfg, since)
			gFleet.Set(0)
			settle()
			return
		case <-ticker.C:
		}
		dec := s.arb.Step(since(), s.h.QueryLoads())
		switch dec.Action {
		case elastic.ScaleUp:
			for i := 0; i < dec.Delta; i++ {
				site := s.allocBurstSite()
				name := fmt.Sprintf("burst-%d", site)
				w, err := s.launcher.Launch(s.ctx, site, name)
				if err != nil {
					s.logf("driver: elastic launch of %s failed: %v", name, err)
					continue
				}
				s.arb.WorkerLaunched(since(), site)
				workers[site] = w
				cUp.Inc()
				reg.Gauge("elastic_workers", "cluster", name).Set(1)
				s.logf("driver: elastic scale-up: launched %s (%s)", name, dec.Reason)
				if tr.Enabled() {
					tr.Instant(0, 0, "elastic", fmt.Sprintf("scale-up site %d", site),
						obs.Args{"site": site})
				}
				go s.watchWorker(w, clk, start)
			}
		case elastic.ScaleDown:
			for _, site := range dec.Sites {
				s.logf("driver: elastic scale-down: draining site %d (%s)", site, dec.Reason)
				s.drainBurstWorker(site, cfg.ScaleDownDrainTimeout, since)
				cDown.Inc()
			}
		}
		gFleet.Set(int64(dec.Workers))
		settle()
	}
}

// watchWorker ends a burst worker's billing episode when its agent loop
// returns, and reports a crash to the head so the site's work is recovered.
func (s *Session) watchWorker(w *cluster.Worker, clk obs.Clock, start time.Duration) {
	<-w.Done()
	s.arb.WorkerStopped(clk.Now()-start, w.Site())
	s.dep.Obs.Metrics().Gauge("elastic_workers",
		"cluster", fmt.Sprintf("burst-%d", w.Site())).Set(0)
	if err := w.Err(); err != nil && !errors.Is(err, context.Canceled) {
		s.logf("driver: burst worker %d failed: %v", w.Site(), err)
		s.h.SiteLost(w.Site(), err)
	}
}

// drainBurstWorker starts a graceful drain and escalates to FailSite if it
// outlives timeout (requeue + reissue then recover the work; requires the
// deployment's fault machinery). The worker's billing episode ends when the
// departure completes.
func (s *Session) drainBurstWorker(site int, timeout time.Duration, since func() time.Duration) {
	ch, err := s.h.DrainSite(site)
	if err != nil {
		s.logf("driver: drain of site %d: %v", site, err)
		return
	}
	go func() {
		if timeout > 0 {
			t := time.NewTimer(timeout)
			defer t.Stop()
			select {
			case <-ch:
			case <-s.ctx.Done():
				return
			case <-t.C:
				s.logf("driver: drain of site %d exceeded %v; declaring it failed", site, timeout)
				s.h.FailSite(site)
			}
		}
		select {
		case <-ch:
			s.arb.WorkerStopped(since(), site)
		case <-s.ctx.Done():
		}
	}()
}

// finishArbiter decommissions every remaining burst worker at session close:
// each is drained (the head has shut down, so nothing is owed), and one that
// fails to depart within the configured drain timeout (or finalDrainGrace)
// is declared failed so session close cannot hang.
func (s *Session) finishArbiter(workers map[int]*cluster.Worker,
	cfg elastic.ArbiterConfig, since func() time.Duration) {
	grace := cfg.ScaleDownDrainTimeout
	if grace <= 0 {
		grace = finalDrainGrace
	}
	type pending struct {
		site int
		ch   <-chan struct{}
	}
	var waits []pending
	for site := range workers {
		ch, err := s.h.DrainSite(site)
		if err != nil {
			continue // already departed (or failed away)
		}
		waits = append(waits, pending{site: site, ch: ch})
	}
	deadline := time.NewTimer(grace)
	defer deadline.Stop()
	for _, p := range waits {
		select {
		case <-p.ch:
			s.arb.WorkerStopped(since(), p.site)
		case <-s.ctx.Done():
			return
		case <-deadline.C:
			s.logf("driver: burst worker %d did not drain at session close; declaring it failed", p.site)
			s.h.FailSite(p.site)
			select {
			case <-p.ch:
				s.arb.WorkerStopped(since(), p.site)
			case <-s.ctx.Done():
				return
			case <-time.After(time.Second):
			}
		}
	}
	// Join the agent goroutines so Close cannot race their final polls, and
	// zero each per-cluster gauge here rather than leaving it to the async
	// watchWorker goroutine — a scrape right after close must see 0.
	for site, w := range workers {
		select {
		case <-w.Done():
			s.dep.Obs.Metrics().Gauge("elastic_workers",
				"cluster", fmt.Sprintf("burst-%d", site)).Set(0)
		case <-s.ctx.Done():
			return
		case <-time.After(grace):
			return
		}
	}
}
