package driver

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/elastic"
	"repro/internal/head"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// finalDrainGrace bounds the wait for burst workers to depart after their
// query completes, when the policy sets no ScaleDownDrainTimeout. A healthy
// worker settles within two polls; a wedged one is declared failed so the
// session can close.
const finalDrainGrace = 30 * time.Second

// allocBurstSite hands out the next burst-worker site ID. IDs grow
// monotonically across the session and are never reused, so a zombie
// incarnation of a departed worker can never collide with a live one.
func (s *Session) allocBurstSite() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	site := s.nextBurstSite
	s.nextBurstSite++
	return site
}

// runElastic is one elastic query's executor: it ticks the controller with
// (elapsed, remaining-work) snapshots and acts on its decisions — launching
// burst workers through the deployment's Launcher and draining them through
// the head's graceful decommission. The loop exits when the query finishes
// (after draining every remaining burst worker) or the session closes.
func (s *Session) runElastic(q *head.Query, pool *jobs.Pool, ctrl *elastic.Controller) {
	d := s.dep
	reg := d.Obs.Metrics()
	tr := d.Obs.Trace()
	pol := ctrl.Policy()
	qlabel := strconv.Itoa(q.ID())
	gWorkers := reg.Gauge("elastic_workers", "query", qlabel)
	cUp := reg.Counter("elastic_scale_events_total", "query", qlabel, "dir", "up")
	cDown := reg.Counter("elastic_scale_events_total", "query", qlabel, "dir", "down")
	gCost := reg.FloatGauge("elastic_cost_dollars", "query", qlabel)

	clk := d.Obs.ClockOrWall()
	start := clk.Now()
	since := func() time.Duration { return clk.Now() - start }

	ticker := time.NewTicker(pol.EffectiveInterval())
	defer ticker.Stop()
	workers := make(map[int]*cluster.Worker)

	for {
		select {
		case <-s.ctx.Done():
			return
		case <-q.Done():
			s.finishElastic(q, ctrl, workers, pol, since)
			gWorkers.Set(0)
			gCost.Set(ctrl.InstanceCost(since()))
			return
		case <-ticker.C:
		}
		dec := ctrl.Step(since(), pool.RemainingBytesBySite())
		switch dec.Action {
		case elastic.ScaleUp:
			for i := 0; i < dec.Delta; i++ {
				site := s.allocBurstSite()
				name := fmt.Sprintf("burst-%d", site)
				w, err := s.launcher.Launch(s.ctx, site, name)
				if err != nil {
					s.logf("driver: elastic launch of %s failed: %v", name, err)
					continue
				}
				ctrl.WorkerLaunched(since(), site)
				workers[site] = w
				cUp.Inc()
				reg.Gauge("elastic_workers", "query", qlabel, "cluster", name).Set(1)
				s.logf("driver: elastic scale-up: launched %s (%s)", name, dec.Reason)
				if tr.Enabled() {
					tr.Instant(0, 0, "elastic", fmt.Sprintf("scale-up site %d", site),
						obs.Args{"site": site, "query": q.ID()})
				}
				go s.watchWorker(q.ID(), w, ctrl, clk, start)
			}
		case elastic.ScaleDown:
			for _, site := range dec.Sites {
				s.logf("driver: elastic scale-down: draining site %d (%s)", site, dec.Reason)
				s.drainBurstWorker(site, pol.ScaleDownDrainTimeout, ctrl, since)
				cDown.Inc()
			}
		}
		gWorkers.Set(int64(dec.Workers))
		gCost.Set(ctrl.InstanceCost(since()))
	}
}

// watchWorker ends a burst worker's billing episode when its agent loop
// returns, and reports a crash to the head so the site's work is recovered.
func (s *Session) watchWorker(query int, w *cluster.Worker, ctrl *elastic.Controller,
	clk obs.Clock, start time.Duration) {
	<-w.Done()
	ctrl.WorkerStopped(clk.Now()-start, w.Site())
	s.dep.Obs.Metrics().Gauge("elastic_workers",
		"query", strconv.Itoa(query), "cluster", fmt.Sprintf("burst-%d", w.Site())).Set(0)
	if err := w.Err(); err != nil && !errors.Is(err, context.Canceled) {
		s.logf("driver: burst worker %d failed: %v", w.Site(), err)
		s.h.SiteLost(w.Site(), err)
	}
}

// drainBurstWorker starts a graceful drain and escalates to FailSite if it
// outlives timeout (requeue + reissue then recover the work; requires the
// deployment's fault machinery). The worker's billing episode ends when the
// departure completes.
func (s *Session) drainBurstWorker(site int, timeout time.Duration,
	ctrl *elastic.Controller, since func() time.Duration) {
	ch, err := s.h.DrainSite(site)
	if err != nil {
		s.logf("driver: drain of site %d: %v", site, err)
		return
	}
	go func() {
		if timeout > 0 {
			t := time.NewTimer(timeout)
			defer t.Stop()
			select {
			case <-ch:
			case <-s.ctx.Done():
				return
			case <-t.C:
				s.logf("driver: drain of site %d exceeded %v; declaring it failed", site, timeout)
				s.h.FailSite(site)
			}
		}
		select {
		case <-ch:
			ctrl.WorkerStopped(since(), site)
		case <-s.ctx.Done():
		}
	}()
}

// finishElastic decommissions every remaining burst worker once the query is
// over: each is drained (it owes nothing — the query's final fold is in), and
// one that fails to depart within the policy's drain timeout (or
// finalDrainGrace) is declared failed so session close cannot hang.
func (s *Session) finishElastic(q *head.Query, ctrl *elastic.Controller,
	workers map[int]*cluster.Worker, pol elastic.Policy, since func() time.Duration) {
	grace := pol.ScaleDownDrainTimeout
	if grace <= 0 {
		grace = finalDrainGrace
	}
	type pending struct {
		site int
		ch   <-chan struct{}
	}
	var waits []pending
	for site := range workers {
		ch, err := s.h.DrainSite(site)
		if err != nil {
			continue // already departed (or failed away)
		}
		waits = append(waits, pending{site: site, ch: ch})
	}
	deadline := time.NewTimer(grace)
	defer deadline.Stop()
	for _, p := range waits {
		select {
		case <-p.ch:
			ctrl.WorkerStopped(since(), p.site)
		case <-s.ctx.Done():
			return
		case <-deadline.C:
			s.logf("driver: burst worker %d did not drain after query %d; declaring it failed", p.site, q.ID())
			s.h.FailSite(p.site)
			select {
			case <-p.ch:
				ctrl.WorkerStopped(since(), p.site)
			case <-s.ctx.Done():
				return
			case <-time.After(time.Second):
			}
		}
	}
	// Join the agent goroutines so Close cannot race their final polls, and
	// zero each per-cluster gauge here rather than leaving it to the async
	// watchWorker goroutine — a scrape right after the query must see 0.
	for site, w := range workers {
		select {
		case <-w.Done():
			s.dep.Obs.Metrics().Gauge("elastic_workers", "query", strconv.Itoa(q.ID()),
				"cluster", fmt.Sprintf("burst-%d", site)).Set(0)
		case <-s.ctx.Done():
			return
		case <-time.After(grace):
			return
		}
	}
}
