// Package mapreduce is the baseline the paper compares Generalized
// Reduction against (Figure 1): a faithful in-process Map-Reduce engine
// with the full map → shuffle → reduce pipeline, hash partitioning, and an
// optional Combine function applied when map-side buffers flush.
//
// The engine instruments exactly what the comparison is about: the volume
// of intermediate (key, value) pairs that must be buffered, grouped and
// communicated. With Combine the communication shrinks but pairs are still
// generated and buffered on every map worker; Generalized Reduction avoids
// the intermediate state entirely.
package mapreduce

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"time"

	"repro/internal/chunk"
)

// Emit delivers one intermediate pair from a Map function.
type Emit func(key string, value any)

// Job describes one Map-Reduce computation.
type Job struct {
	// Map processes one data unit, emitting intermediate pairs. Required.
	Map func(unit []byte, emit Emit) error
	// Combine optionally pre-reduces a key's buffered values on the map
	// side whenever a worker's buffer flushes. It must be semantically
	// compatible with Reduce (associative pre-aggregation).
	Combine func(key string, values []any) (any, error)
	// Reduce merges all values for a key into the final value. Required.
	Reduce func(key string, values []any) (any, error)

	// Workers is the number of map workers (defaults to 1).
	Workers int
	// Reducers is the number of reduce partitions (defaults to Workers).
	Reducers int
	// UnitSize is the dataset's bytes per unit. Required.
	UnitSize int
	// FlushThreshold is the number of buffered pairs per map worker that
	// triggers a combine flush (ignored without Combine). Defaults to 4096.
	FlushThreshold int
}

// Metrics reports where the time and memory went.
type Metrics struct {
	MapTime     time.Duration
	ShuffleTime time.Duration
	ReduceTime  time.Duration
	// PairsEmitted counts intermediate pairs produced by Map.
	PairsEmitted int64
	// PairsShuffled counts pairs that crossed from map to reduce workers
	// (after combining, if enabled).
	PairsShuffled int64
	// PeakBufferedPairs is the high-water mark of pairs resident in map-side
	// buffers across all workers — the intermediate memory requirement that
	// Generalized Reduction is designed to avoid.
	PeakBufferedPairs int64
}

// Result holds the final key → value map and the run's metrics.
type Result struct {
	Output  map[string]any
	Metrics Metrics
}

var hashSeed = maphash.MakeSeed()

func partition(key string, n int) int {
	return int(maphash.String(hashSeed, key) % uint64(n))
}

// pair is one buffered intermediate record.
type pair struct {
	key   string
	value any
}

// mapWorker accumulates pairs partitioned for the reducers.
type mapWorker struct {
	job      *Job
	buffers  [][]pair // one per reduce partition
	buffered int
	flushAt  int // adaptive combine trigger (≥ job.FlushThreshold)
	emitted  int64
	shuffled int64
	onPeak   func(delta int)
}

func (w *mapWorker) emit(key string, value any) {
	p := partition(key, len(w.buffers))
	w.buffers[p] = append(w.buffers[p], pair{key, value})
	w.buffered++
	w.emitted++
	w.onPeak(+1)
	if w.job.Combine != nil && w.buffered >= w.flushAt {
		w.flush()
		// When the key cardinality exceeds the configured threshold a flush
		// cannot shrink the buffer below it; back off so combining stays
		// amortized O(1) per emit instead of re-grouping on every pair.
		w.flushAt = w.buffered * 2
		if w.flushAt < w.job.FlushThreshold {
			w.flushAt = w.job.FlushThreshold
		}
	}
}

// flush groups each partition's buffer by key and applies Combine,
// replacing the buffered pairs with one pair per key.
func (w *mapWorker) flush() {
	for p, buf := range w.buffers {
		if len(buf) == 0 {
			continue
		}
		grouped := make(map[string][]any, len(buf))
		for _, kv := range buf {
			grouped[kv.key] = append(grouped[kv.key], kv.value)
		}
		nw := buf[:0]
		for k, vs := range grouped {
			v, err := w.job.Combine(k, vs)
			if err != nil {
				// Combine failures surface at Run via the worker error; keep
				// the raw pairs so correctness is preserved.
				nw = buf
				break
			}
			nw = append(nw, pair{k, v})
		}
		w.onPeak(len(nw) - len(buf))
		w.buffered += len(nw) - len(buf)
		w.buffers[p] = nw
	}
}

// Run executes the job over every chunk of ix readable from src.
func Run(job Job, ix *chunk.Index, src chunk.Source) (*Result, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, errors.New("mapreduce: Map and Reduce are required")
	}
	if job.UnitSize <= 0 {
		return nil, fmt.Errorf("mapreduce: UnitSize must be positive, got %d", job.UnitSize)
	}
	if job.Workers <= 0 {
		job.Workers = 1
	}
	if job.Reducers <= 0 {
		job.Reducers = job.Workers
	}
	if job.FlushThreshold <= 0 {
		job.FlushThreshold = 4096
	}

	var metrics Metrics
	var peakMu sync.Mutex
	var buffered, peak int64
	onPeak := func(delta int) {
		peakMu.Lock()
		buffered += int64(delta)
		if buffered > peak {
			peak = buffered
		}
		peakMu.Unlock()
	}

	// ----- Map phase -----
	mapStart := time.Now()
	chunks := make(chan []byte, job.Workers)
	workers := make([]*mapWorker, job.Workers)
	errCh := make(chan error, job.Workers+1)
	var wg sync.WaitGroup
	for i := 0; i < job.Workers; i++ {
		w := &mapWorker{job: &job, buffers: make([][]pair, job.Reducers), flushAt: job.FlushThreshold, onPeak: onPeak}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for data := range chunks {
				for off := 0; off < len(data); off += job.UnitSize {
					if err := job.Map(data[off:off+job.UnitSize], w.emit); err != nil {
						errCh <- err
						return
					}
				}
			}
			if job.Combine != nil {
				w.flush() // final combine before shuffle
			}
		}()
	}
	go func() {
		defer close(chunks)
		for _, ref := range ix.AllRefs() {
			data, err := src.ReadChunk(ref)
			if err != nil {
				errCh <- fmt.Errorf("mapreduce: retrieving %v: %w", ref, err)
				return
			}
			if len(data)%job.UnitSize != 0 {
				errCh <- fmt.Errorf("mapreduce: chunk %v not unit-aligned", ref)
				return
			}
			chunks <- data
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	metrics.MapTime = time.Since(mapStart)
	for _, w := range workers {
		metrics.PairsEmitted += w.emitted
	}

	// ----- Shuffle phase: route each partition's pairs to its reducer and
	// group by key (the sort/group/communicate work GR avoids). -----
	shuffleStart := time.Now()
	partitions := make([]map[string][]any, job.Reducers)
	for p := range partitions {
		partitions[p] = make(map[string][]any)
	}
	for _, w := range workers {
		for p, buf := range w.buffers {
			for _, kv := range buf {
				partitions[p][kv.key] = append(partitions[p][kv.key], kv.value)
				metrics.PairsShuffled++
			}
			w.onPeak(-len(buf))
			w.buffers[p] = nil
		}
	}
	metrics.ShuffleTime = time.Since(shuffleStart)

	// ----- Reduce phase -----
	reduceStart := time.Now()
	outputs := make([]map[string]any, job.Reducers)
	var rwg sync.WaitGroup
	for p := 0; p < job.Reducers; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			out := make(map[string]any, len(partitions[p]))
			keys := make([]string, 0, len(partitions[p]))
			for k := range partitions[p] {
				keys = append(keys, k)
			}
			sort.Strings(keys) // reducers see keys in sorted order
			for _, k := range keys {
				v, err := job.Reduce(k, partitions[p][k])
				if err != nil {
					errCh <- err
					return
				}
				out[k] = v
			}
			outputs[p] = out
		}(p)
	}
	rwg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	metrics.ReduceTime = time.Since(reduceStart)
	metrics.PeakBufferedPairs = peak

	final := make(map[string]any)
	for _, out := range outputs {
		for k, v := range out {
			final[k] = v
		}
	}
	return &Result{Output: final, Metrics: metrics}, nil
}
