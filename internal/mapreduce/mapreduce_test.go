package mapreduce

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chunk"
)

// buildWordDataset creates units of 4 bytes, each a "word id" in [0,vocab).
func buildWordDataset(t testing.TB, units int64, vocab uint32) (*chunk.Index, *chunk.MemSource, map[string]int64) {
	t.Helper()
	ix, err := chunk.Layout("wc", units, 4, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	want := make(map[string]int64)
	var unit int64
	for _, f := range ix.Files {
		buf := make([]byte, f.Size)
		for i := 0; i < int(f.Size/4); i++ {
			w := uint32(unit*unit%int64(vocab)) % vocab // skewed distribution
			binary.LittleEndian.PutUint32(buf[4*i:], w)
			want[fmt.Sprint(w)]++
			unit++
		}
		if err := src.WriteFile(f.Name, buf); err != nil {
			t.Fatal(err)
		}
	}
	return ix, src, want
}

func wordCountJob(workers int, combine bool) Job {
	job := Job{
		UnitSize: 4,
		Workers:  workers,
		Map: func(unit []byte, emit Emit) error {
			emit(fmt.Sprint(binary.LittleEndian.Uint32(unit)), int64(1))
			return nil
		},
		Reduce: func(key string, values []any) (any, error) {
			var n int64
			for _, v := range values {
				n += v.(int64)
			}
			return n, nil
		},
	}
	if combine {
		job.Combine = func(key string, values []any) (any, error) {
			var n int64
			for _, v := range values {
				n += v.(int64)
			}
			return n, nil
		}
		job.FlushThreshold = 128
	}
	return job
}

func TestWordCount(t *testing.T) {
	ix, src, want := buildWordDataset(t, 2000, 37)
	for _, combine := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			res, err := Run(wordCountJob(workers, combine), ix, src)
			if err != nil {
				t.Fatalf("combine=%v workers=%d: %v", combine, workers, err)
			}
			if len(res.Output) != len(want) {
				t.Fatalf("combine=%v: %d keys, want %d", combine, len(res.Output), len(want))
			}
			for k, w := range want {
				if got := res.Output[k].(int64); got != w {
					t.Errorf("combine=%v workers=%d: count[%s] = %d, want %d", combine, workers, k, got, w)
				}
			}
			if res.Metrics.PairsEmitted != 2000 {
				t.Errorf("PairsEmitted = %d, want 2000", res.Metrics.PairsEmitted)
			}
		}
	}
}

// TestCombineShrinksShuffleAndMemory is the quantitative claim behind the
// paper's Figure 1 discussion: Combine reduces communication (shuffled
// pairs) and buffering, but pairs are still generated on every map worker.
func TestCombineShrinksShuffleAndMemory(t *testing.T) {
	ix, src, _ := buildWordDataset(t, 4000, 13)
	plain, err := Run(wordCountJob(2, false), ix, src)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(wordCountJob(2, true), ix, src)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Metrics.PairsShuffled >= plain.Metrics.PairsShuffled {
		t.Errorf("combine did not shrink shuffle: %d vs %d",
			combined.Metrics.PairsShuffled, plain.Metrics.PairsShuffled)
	}
	if combined.Metrics.PeakBufferedPairs >= plain.Metrics.PeakBufferedPairs {
		t.Errorf("combine did not shrink peak buffering: %d vs %d",
			combined.Metrics.PeakBufferedPairs, plain.Metrics.PeakBufferedPairs)
	}
	// But map-side emission is unchanged: pairs are still generated.
	if combined.Metrics.PairsEmitted != plain.Metrics.PairsEmitted {
		t.Errorf("combine changed emission count: %d vs %d",
			combined.Metrics.PairsEmitted, plain.Metrics.PairsEmitted)
	}
}

func TestRunValidation(t *testing.T) {
	ix, src, _ := buildWordDataset(t, 10, 5)
	if _, err := Run(Job{UnitSize: 4}, ix, src); err == nil {
		t.Error("missing Map/Reduce accepted")
	}
	job := wordCountJob(1, false)
	job.UnitSize = 0
	if _, err := Run(job, ix, src); err == nil {
		t.Error("zero unit size accepted")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	ix, src, _ := buildWordDataset(t, 100, 5)
	job := wordCountJob(2, false)
	job.Map = func(unit []byte, emit Emit) error { return errors.New("map boom") }
	if _, err := Run(job, ix, src); err == nil || err.Error() != "map boom" {
		t.Errorf("map error: %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	ix, src, _ := buildWordDataset(t, 100, 5)
	job := wordCountJob(2, false)
	job.Reduce = func(key string, values []any) (any, error) { return nil, errors.New("reduce boom") }
	if _, err := Run(job, ix, src); err == nil {
		t.Error("reduce error swallowed")
	}
}

func TestRetrievalErrorPropagates(t *testing.T) {
	ix, _, _ := buildWordDataset(t, 100, 5)
	empty := chunk.NewMemSource(ix) // no files loaded
	if _, err := Run(wordCountJob(1, false), ix, empty); err == nil {
		t.Error("retrieval error swallowed")
	}
}

func TestPartitionStable(t *testing.T) {
	for _, key := range []string{"", "a", "hello", "12345"} {
		p1 := partition(key, 7)
		p2 := partition(key, 7)
		if p1 != p2 {
			t.Errorf("partition(%q) unstable: %d vs %d", key, p1, p2)
		}
		if p1 < 0 || p1 >= 7 {
			t.Errorf("partition(%q) = %d out of range", key, p1)
		}
	}
}

// TestCombineHighCardinality guards the adaptive flush threshold: when the
// number of distinct keys exceeds FlushThreshold, combining must stay
// amortized (a fixed threshold would re-group the whole buffer on every
// emit — quadratic time).
func TestCombineHighCardinality(t *testing.T) {
	const vocab = 5000 // ≫ FlushThreshold of 128
	ix, src, want := buildWordDataset(t, 20000, vocab)
	job := wordCountJob(2, true)
	done := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := Run(job, ix, src)
		if err != nil {
			errCh <- err
			return
		}
		done <- res
	}()
	select {
	case err := <-errCh:
		t.Fatal(err)
	case res := <-done:
		for k, w := range want {
			if got := res.Output[k].(int64); got != w {
				t.Fatalf("count[%s] = %d, want %d", k, got, w)
			}
		}
		// Combining still bounded the shuffle volume near the cardinality.
		if res.Metrics.PairsShuffled > 4*int64(len(want)) {
			t.Errorf("shuffled %d pairs for %d keys", res.Metrics.PairsShuffled, len(want))
		}
	case <-time.After(20 * time.Second): // generous; the fixed code takes ms
		t.Fatal("high-cardinality combine did not finish in time (quadratic flush?)")
	}
}
