package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/chunk"
	"repro/internal/jobs"
)

func sampleJobs(n int) []jobs.Job {
	js := make([]jobs.Job, n)
	for i := range js {
		js[i] = jobs.Job{
			ID:   i * 7,
			Site: i % 3,
			Ref: chunk.Ref{
				File:   i % 5,
				Seq:    i,
				Offset: int64(i) * 12800,
				Size:   12800,
				Units:  128,
			},
		}
	}
	return js
}

// every message type with non-trivial field values, including negatives and
// empty/nil payloads.
func sampleMessages() []Message {
	return []Message{
		Hello{Site: 3, Cluster: "cloud", Cores: 16, Codec: WireBinary},
		Hello{},
		JobSpec{App: "knn", Params: []byte{1, 2, 3}, UnitSize: 4096, GroupBytes: 256 << 10,
			Index: bytes.Repeat([]byte{0xAB}, 100), GroupSize: 8,
			Checkpoint: []byte("ckpt"), HeartbeatEvery: 5e8, Codec: WireBinary},
		JobSpec{App: "kmeans"},
		JobRequest{Site: 1, N: 32},
		JobGrant{Jobs: sampleJobs(5), Wait: true},
		JobGrant{},
		JobsDone{Site: 2, Jobs: sampleJobs(3)},
		JobsDoneAck{Dup: []int{4, 9, 11}, Err: "partial"},
		JobsDoneAck{},
		JobsDoneAck{Err: "fenced", Code: CodeFenced},
		Heartbeat{Site: 7},
		CheckpointSave{Site: 1, Seq: 42, Data: []byte("checkpoint-bytes")},
		CheckpointSave{Site: 0, Seq: 1},
		CheckpointAck{Err: "stale seq"},
		CheckpointAck{},
		CheckpointAck{Err: "stale seq", Code: CodeStale},
		ReductionResult{Site: 2, Object: []byte{9, 8, 7}, Processing: 123, Retrieval: 456,
			Sync: 789, LocalJobs: 10, StolenJobs: 3},
		Finished{Object: bytes.Repeat([]byte{0xCD}, 50)},
		Finished{},
		ErrorReply{Err: "boom"},
		PutReq{Key: "points0000.dat", Data: bytes.Repeat([]byte{1}, 1000)},
		PutResp{Err: "disk full", Code: CodeTransient},
		PutResp{},
		GetReq{Key: "k", Off: 12800, Len: -1},
		GetResp{Data: bytes.Repeat([]byte{2}, 64), Code: CodeOK},
		GetResp{Err: "no such key", Code: CodeNotFound},
		StatReq{Key: "x"},
		StatResp{Size: 1 << 40, Err: "", Code: 0},
		ListReq{Prefix: "points"},
		ListResp{Keys: []string{"a", "bb", "ccc"}},
		ListResp{},
		Hello{Site: 2, Cluster: "shared", Cores: 8, Codec: WireBinary, Proto: ProtoMulti},
		JobSpec{App: "histogram", Query: 7, Codec: WireBinary},
		JobsDone{Site: 1, Query: 3, Jobs: []jobs.Job{{ID: 12, Site: 1}}},
		CheckpointSave{Site: 0, Seq: 2, Query: 5, Data: []byte("q5")},
		ReductionResult{Site: 1, Query: 4, Object: []byte{1}, Processing: 2, Retrieval: 3, Sync: 4, LocalJobs: 5, StolenJobs: 6},
		ErrorReply{Err: "fenced", Code: CodeFenced},
		SiteSpec{HeartbeatEvery: 25e7, Codec: WireBinary},
		SiteSpec{},
		PollRequest{Site: 3, N: 9},
		PollReply{
			Queries: []QueryJobs{
				{Query: 1, Jobs: []jobs.Job{{ID: 1, Site: 0}, {ID: 2, Site: 1}}},
				{Query: 2},
			},
			Done:    []int{3, 4},
			Dropped: []int{5},
			Wait:    true,
		},
		PollReply{Shutdown: true},
		PollReply{Done: []int{2}, Drain: true},
		PollReply{},
		QuerySpecRequest{Site: 2, Query: 6},
		ResultAck{Err: "unknown query", Code: CodeUnknownQuery},
		ResultAck{},
		// Traced variants: optional trailing contexts, span piggybacking and
		// the traced tail-payload tags.
		Hello{Site: 4, Cluster: "edge", Cores: 2, Proto: ProtoMulti, Trace: TraceContext{SpanID: 5}},
		JobSpec{App: "knn", Query: 2, Codec: WireBinary, Trace: TraceContext{TraceID: 3}},
		JobsDone{Site: 1, Query: 3, Jobs: sampleJobs(2), Trace: TraceContext{TraceID: 4, SpanID: 9}},
		CheckpointSave{Site: 1, Seq: 7, Query: 5, Data: []byte("q5-traced"), Trace: TraceContext{TraceID: 6, SpanID: 2}},
		ReductionResult{Site: 0, Query: 1, Object: []byte{1, 2}, Processing: 3,
			Trace: TraceContext{TraceID: 2, SpanID: 8}},
		SiteSpec{HeartbeatEvery: 1e9, Codec: WireBinary, Trace: TraceContext{TraceID: 4, SpanID: 1}},
		PollRequest{Site: 2, N: 8, NowNS: 123456789, Spans: []WireSpan{
			{Trace: TraceContext{TraceID: 1, SpanID: 2}, Name: "job 3", Cat: "job", TID: 1, Job: 3, Start: 10, Dur: 20},
			{Trace: TraceContext{TraceID: 2, SpanID: 3}, Name: "retrieve", Cat: "retrieval", TID: 2, Query: 1, Job: 4, Start: 30, Dur: 40},
		}},
		PollRequest{Site: 0, N: 1, NowNS: 42}, // clock sample, no spans
		PollReply{Queries: []QueryJobs{
			{Query: 1, Jobs: sampleJobs(2), Trace: TraceContext{TraceID: 2, SpanID: 11}},
			{Query: 2}, // untraced grant alongside a traced one
		}, Wait: true},
		// Per-query elastic policies: optional trailing block after the
		// (possibly zero) trace context, plus the result-fetch message.
		Hello{Site: 5, Cluster: "client", Cores: 4, Proto: ProtoMulti,
			Policy: ElasticPolicy{Deadline: 120e9, Budget: 0.10, MaxWorkers: 8}},
		Hello{Site: 6, Cluster: "client", Cores: 4, Proto: ProtoMulti,
			Trace:  TraceContext{SpanID: 3},
			Policy: ElasticPolicy{Deadline: 90e9, MinWorkers: 1, MaxWorkers: 4}},
		JobSpec{App: "knn", Query: 3, Codec: WireBinary,
			Policy: ElasticPolicy{Budget: 0.25, MaxWorkers: 16}},
		JobSpec{App: "kmeans", Query: 4, Codec: WireBinary,
			Trace:  TraceContext{TraceID: 5},
			Policy: ElasticPolicy{Deadline: 240e9, Budget: 0.12, MinWorkers: 2, MaxWorkers: 6}},
		ResultRequest{Site: 2, Query: 6},
		ResultRequest{},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("AppendFrame(%T): %v", m, err)
		}
		got, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame(%T): %v", m, err)
		}
		if n != len(frame) {
			t.Errorf("%T: consumed %d of %d bytes", m, n, len(frame))
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T round trip:\n got %#v\nwant %#v", m, got, m)
		}
	}
}

// TestBinaryRoundTripConcatenated checks frames are self-delimiting on a
// stream.
func TestBinaryRoundTripConcatenated(t *testing.T) {
	msgs := sampleMessages()
	var stream []byte
	var err error
	for _, m := range msgs {
		if stream, err = AppendFrame(stream, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, n, err := DecodeFrame(stream)
		if err != nil {
			t.Fatalf("decoding %T from stream: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stream decode: got %#v want %#v", got, want)
		}
		stream = stream[n:]
	}
	if len(stream) != 0 {
		t.Fatalf("%d stream bytes left over", len(stream))
	}
}

func TestDecodeFrameMalformed(t *testing.T) {
	valid, err := AppendFrame(nil, JobGrant{Jobs: sampleJobs(2), Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	validPayload, err := AppendFrame(nil, GetResp{Data: []byte("hello world")})
	if err != nil {
		t.Fatal(err)
	}

	frameLen := func(n uint32) []byte {
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, n)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty input", nil, ErrTruncatedFrame},
		{"short length word", []byte{1, 2}, ErrTruncatedFrame},
		{"zero-length frame", frameLen(0), ErrCorruptFrame},
		{"oversized length word", frameLen(MaxFrameBytes + 1), ErrFrameTooBig},
		{"huge length word", frameLen(0xFFFFFFFF), ErrFrameTooBig},
		{"length beyond input", append(frameLen(100), 1, 2, 3), ErrTruncatedFrame},
		{"unknown tag", append(frameLen(1), 0xEE), ErrUnknownType},
		{"zero tag", append(frameLen(1), 0x00), ErrUnknownType},
		{"truncated body", valid[:len(valid)-4], ErrTruncatedFrame},
		{"trailing garbage inside frame",
			func() []byte {
				f := append([]byte(nil), valid...)
				f = append(f, 0xAA, 0xBB)
				binary.LittleEndian.PutUint32(f, uint32(len(f)-4))
				return f
			}(), ErrCorruptFrame},
		{"job count exceeding frame",
			func() []byte {
				// JobGrant with Wait byte then a count claiming 1M jobs in a
				// tiny frame: must be rejected before allocating.
				body := []byte{byte(tagJobGrant), 0}
				body = appendU32(body, 1<<20)
				return append(frameLen(uint32(len(body))), body...)
			}(), ErrCorruptFrame},
		{"string length exceeding frame",
			func() []byte {
				body := []byte{byte(tagErrorReply)}
				body = appendU32(body, 1<<30)
				return append(frameLen(uint32(len(body))), body...)
			}(), ErrCorruptFrame},
		{"dup count exceeding frame",
			func() []byte {
				body := []byte{byte(tagJobsDoneAck)}
				body = appendU32(body, 0)     // empty Err
				body = appendU32(body, 0)     // Code OK
				body = appendU32(body, 1<<28) // absurd dup count
				return append(frameLen(uint32(len(body))), body...)
			}(), ErrCorruptFrame},
		{"payload frame truncated mid-meta", validPayload[:6], ErrTruncatedFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, _, err := DecodeFrame(tc.data)
			if err == nil {
				t.Fatalf("decoded %#v from malformed input", m)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want %v", err, tc.want)
			}
		})
	}
}

// TestGobBinaryCrossFieldCompat pins the negotiation contract: a gob peer
// without the Codec fields decodes to the zero value WireGob.
func TestCodecConstants(t *testing.T) {
	if WireGob != 0 {
		t.Fatalf("WireGob must be the zero value, got %d", WireGob)
	}
	if WireBinary <= WireGob {
		t.Fatalf("WireBinary (%d) must rank above WireGob", WireBinary)
	}
}

// ---------------------------------------------------------------------------
// Allocation-regression tests: encoding hot messages into a reused buffer
// must not allocate; decoding must stay within a small constant.

func TestEncodeAllocs(t *testing.T) {
	grant := JobGrant{Jobs: sampleJobs(64)}
	done := JobsDone{Site: 1, Jobs: sampleJobs(64)}
	chunkMsg := GetResp{Data: bytes.Repeat([]byte{3}, 64<<10)}
	buf := make([]byte, 0, 1<<20)
	cases := []struct {
		name string
		m    Message
	}{
		{"JobGrant", grant},
		{"JobsDone", done},
		{"GetResp chunk", chunkMsg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(100, func() {
				meta, _, err := AppendBinary(buf[:0], tc.m)
				if err != nil {
					t.Fatal(err)
				}
				if cap(meta) > cap(buf) {
					buf = meta
				}
			})
			if allocs > 0 {
				t.Errorf("encoding %s: %.1f allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

func TestDecodeAllocs(t *testing.T) {
	grant, err := AppendFrame(nil, JobGrant{Jobs: sampleJobs(64)})
	if err != nil {
		t.Fatal(err)
	}
	done, err := AppendFrame(nil, JobsDone{Site: 1, Jobs: sampleJobs(64)})
	if err != nil {
		t.Fatal(err)
	}
	chunkFrame, err := AppendFrame(nil, GetResp{Data: bytes.Repeat([]byte{3}, 64<<10)})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	alloc := func(n int) []byte { return payload[:n] } // stand-in for bufpool.Get

	cases := []struct {
		name  string
		frame []byte
		alloc func(int) []byte
		max   float64
	}{
		// One allocation for the job slice, plus the bytes.Reader, the
		// frameReader, and boxing the result into the Message interface.
		{"JobGrant", grant, nil, 4},
		{"JobsDone", done, nil, 4},
		// The chunk payload lands in the pooled buffer: reader + frameReader
		// + interface boxing only.
		{"GetResp chunk pooled", chunkFrame, alloc, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(100, func() {
				body := tc.frame[5:]
				if _, err := DecodeBinaryBody(tc.frame[4], len(body), bytes.NewReader(body), tc.alloc); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > tc.max {
				t.Errorf("decoding %s: %.1f allocs/op, want ≤ %.0f", tc.name, allocs, tc.max)
			}
		})
	}
}
