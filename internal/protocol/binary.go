package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/chunk"
	"repro/internal/jobs"
)

// Binary wire format. Every message is one frame:
//
//	u32 LE length  — bytes that follow (tag + body); bounded by MaxFrameBytes
//	u8  tag        — message type (tagHello … tagListResp)
//	body           — fixed-layout fields in declaration order
//
// Field encodings (all little-endian, varint-free):
//
//	int/int64 → u64 two's complement     string/[]byte → u32 length + bytes
//	small counts, codes, sites, file/seq/unit counts → u32
//	bool → u8
//
// Messages that carry a bulk payload (PutReq.Data, GetResp.Data,
// ReductionResult.Object, Finished.Object, CheckpointSave.Data) place it
// LAST with no length prefix — its length is whatever remains of the frame —
// so encoders write the payload bytes directly after the fixed meta and
// decoders read them straight into a caller-supplied (pooled) buffer. No
// reflection, no intermediate copies.
//
// Trace propagation (negotiated via Hello.Trace/SiteSpec.Trace) extends the
// format in two backward-compatible ways:
//
//   - Messages WITHOUT a payload tail (Hello, JobSpec, SiteSpec, JobsDone,
//     PollRequest, PollReply) append OPTIONAL TRAILING trace fields, emitted
//     only when non-zero. Decoders read them only when frame bytes remain,
//     so a zero context encodes bit-identically to the pre-trace format and
//     an old frame decodes to zero values.
//   - Tail-payload messages (CheckpointSave, ReductionResult) cannot grow a
//     tail, so a non-zero context selects a TRACED TAG variant
//     (tagCheckpointSaveTraced/tagReductionResultTraced) that inserts the
//     context before the payload. The traced tags are only sent after both
//     sides negotiated tracing, so old peers never see them.
//
// Per-query elastic policies (ElasticPolicy on Hello and JobSpec) extend the
// format the same trailing-field way: an optional 32-byte policy block
// (Deadline i64 ns | Budget f64 bits | MinWorkers | MaxWorkers) AFTER the
// optional trace context, emitted only when the policy is non-zero. Because
// the policy trails the trace, a non-zero policy forces the trace fields onto
// the wire too (zeros if untraced) so decoders can position both; zero-policy
// frames stay bit-identical to the pre-policy format.
const (
	tagHello byte = 1 + iota
	tagJobSpec
	tagJobRequest
	tagJobGrant
	tagJobsDone
	tagJobsDoneAck
	tagHeartbeat
	tagCheckpointSave
	tagCheckpointAck
	tagReductionResult
	tagFinished
	tagErrorReply
	tagPutReq
	tagPutResp
	tagGetReq
	tagGetResp
	tagStatReq
	tagStatResp
	tagListReq
	tagListResp
	tagSiteSpec
	tagPollRequest
	tagPollReply
	tagQuerySpecRequest
	tagResultAck
	// Traced variants of the tail-payload messages (see the trace-propagation
	// note above). New tags MUST be appended here, never inserted.
	tagCheckpointSaveTraced
	tagReductionResultTraced
	tagResultRequest
)

// traceWire is the fixed encoded size of one TraceContext (two u64 words);
// wireSpanMin is the minimum encoded size of one WireSpan (empty strings).
const (
	traceWire   = 8 + 8
	wireSpanMin = traceWire + 4 + 4 + 4 + 4 + 8 + 8 + 8
)

// MaxFrameBytes caps a frame's length word. A hostile or corrupt length is
// rejected before any allocation happens. Generous: the largest legitimate
// frame is a chunk payload (tens of MB) or a whole-file Put.
const MaxFrameBytes = 512 << 20

// Typed decode errors. The binary decoder never panics on hostile input; it
// returns one of these (possibly wrapped with context).
var (
	// ErrFrameTooBig reports a length word exceeding MaxFrameBytes.
	ErrFrameTooBig = errors.New("protocol: frame exceeds size cap")
	// ErrTruncatedFrame reports a frame ending mid-field.
	ErrTruncatedFrame = errors.New("protocol: truncated frame")
	// ErrUnknownType reports an unrecognized message tag.
	ErrUnknownType = errors.New("protocol: unknown message type")
	// ErrCorruptFrame reports a structurally invalid frame: embedded lengths
	// or counts inconsistent with the frame size, or trailing garbage.
	ErrCorruptFrame = errors.New("protocol: corrupt frame")
)

// jobWire is the fixed encoded size of one jobs.Job:
// ID u64 | Site u32 | File u32 | Seq u32 | Offset u64 | Size u64 | Units u32.
const jobWire = 8 + 4 + 4 + 4 + 8 + 8 + 4

// ---------------------------------------------------------------------------
// Encoding.

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendInt(b []byte, v int) []byte   { return appendU64(b, uint64(int64(v))) }
func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendTrace(b []byte, t TraceContext) []byte {
	b = appendU64(b, t.TraceID)
	return appendU64(b, t.SpanID)
}

func appendPolicy(b []byte, p ElasticPolicy) []byte {
	b = appendI64(b, int64(p.Deadline))
	b = appendU64(b, math.Float64bits(p.Budget))
	b = appendInt(b, p.MinWorkers)
	return appendInt(b, p.MaxWorkers)
}

// appendTracePolicy emits the optional trailing trace-then-policy block of
// Hello/JobSpec: nothing when both are zero, trace alone when only it is
// set, and trace (zeros if need be) followed by the policy otherwise.
func appendTracePolicy(b []byte, t TraceContext, p ElasticPolicy) []byte {
	if t.Zero() && p.Zero() {
		return b
	}
	b = appendTrace(b, t)
	if !p.Zero() {
		b = appendPolicy(b, p)
	}
	return b
}

func appendJobs(b []byte, js []jobs.Job) []byte {
	b = appendU32(b, uint32(len(js)))
	for _, j := range js {
		b = appendU64(b, uint64(int64(j.ID)))
		b = appendU32(b, uint32(j.Site))
		b = appendU32(b, uint32(j.Ref.File))
		b = appendU32(b, uint32(j.Ref.Seq))
		b = appendU64(b, uint64(j.Ref.Offset))
		b = appendU64(b, uint64(j.Ref.Size))
		b = appendU32(b, uint32(j.Ref.Units))
	}
	return b
}

// AppendBinary encodes m onto dst (which should have the frame's length word
// reserved or prepended by the caller). It returns the grown meta buffer —
// tag byte plus fixed fields — and, for bulk-payload messages, the payload
// slice to transmit verbatim after the meta. The payload is aliased, never
// copied; the frame length is len(meta)+len(payload).
func AppendBinary(dst []byte, m Message) (meta, payload []byte, err error) {
	switch m := m.(type) {
	case Hello:
		dst = append(dst, tagHello)
		dst = appendInt(dst, m.Site)
		dst = appendStr(dst, m.Cluster)
		dst = appendInt(dst, m.Cores)
		dst = appendInt(dst, m.Codec)
		dst = appendInt(dst, m.Proto)
		dst = appendTracePolicy(dst, m.Trace, m.Policy)
	case JobSpec:
		dst = append(dst, tagJobSpec)
		dst = appendStr(dst, m.App)
		dst = appendBytes(dst, m.Params)
		dst = appendInt(dst, m.UnitSize)
		dst = appendInt(dst, m.GroupBytes)
		dst = appendBytes(dst, m.Index)
		dst = appendInt(dst, m.GroupSize)
		dst = appendBytes(dst, m.Checkpoint)
		dst = appendI64(dst, m.HeartbeatEvery)
		dst = appendInt(dst, m.Codec)
		dst = appendInt(dst, m.Query)
		dst = appendTracePolicy(dst, m.Trace, m.Policy)
	case JobRequest:
		dst = append(dst, tagJobRequest)
		dst = appendInt(dst, m.Site)
		dst = appendInt(dst, m.N)
	case JobGrant:
		dst = append(dst, tagJobGrant)
		if m.Wait {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendJobs(dst, m.Jobs)
	case JobsDone:
		dst = append(dst, tagJobsDone)
		dst = appendInt(dst, m.Site)
		dst = appendInt(dst, m.Query)
		dst = appendJobs(dst, m.Jobs)
		if !m.Trace.Zero() {
			dst = appendTrace(dst, m.Trace)
		}
	case JobsDoneAck:
		dst = append(dst, tagJobsDoneAck)
		dst = appendStr(dst, m.Err)
		dst = appendU32(dst, uint32(m.Code))
		dst = appendU32(dst, uint32(len(m.Dup)))
		for _, id := range m.Dup {
			dst = appendInt(dst, id)
		}
	case Heartbeat:
		dst = append(dst, tagHeartbeat)
		dst = appendInt(dst, m.Site)
	case CheckpointSave:
		if m.Trace.Zero() {
			dst = append(dst, tagCheckpointSave)
		} else {
			dst = append(dst, tagCheckpointSaveTraced)
		}
		dst = appendInt(dst, m.Site)
		dst = appendInt(dst, m.Seq)
		dst = appendInt(dst, m.Query)
		if !m.Trace.Zero() {
			dst = appendTrace(dst, m.Trace)
		}
		return dst, m.Data, nil
	case CheckpointAck:
		dst = append(dst, tagCheckpointAck)
		dst = appendStr(dst, m.Err)
		dst = appendU32(dst, uint32(m.Code))
	case ReductionResult:
		if m.Trace.Zero() {
			dst = append(dst, tagReductionResult)
		} else {
			dst = append(dst, tagReductionResultTraced)
		}
		dst = appendInt(dst, m.Site)
		dst = appendInt(dst, m.Query)
		dst = appendI64(dst, m.Processing)
		dst = appendI64(dst, m.Retrieval)
		dst = appendI64(dst, m.Sync)
		dst = appendInt(dst, m.LocalJobs)
		dst = appendInt(dst, m.StolenJobs)
		if !m.Trace.Zero() {
			dst = appendTrace(dst, m.Trace)
		}
		return dst, m.Object, nil
	case Finished:
		dst = append(dst, tagFinished)
		return dst, m.Object, nil
	case ErrorReply:
		dst = append(dst, tagErrorReply)
		dst = appendStr(dst, m.Err)
		dst = appendU32(dst, uint32(m.Code))
	case SiteSpec:
		dst = append(dst, tagSiteSpec)
		dst = appendI64(dst, m.HeartbeatEvery)
		dst = appendInt(dst, m.Codec)
		if !m.Trace.Zero() {
			dst = appendTrace(dst, m.Trace)
		}
	case PollRequest:
		dst = append(dst, tagPollRequest)
		dst = appendInt(dst, m.Site)
		dst = appendInt(dst, m.N)
		if m.NowNS != 0 || len(m.Spans) > 0 {
			dst = appendI64(dst, m.NowNS)
			dst = appendU32(dst, uint32(len(m.Spans)))
			for _, s := range m.Spans {
				dst = appendTrace(dst, s.Trace)
				dst = appendStr(dst, s.Name)
				dst = appendStr(dst, s.Cat)
				dst = appendU32(dst, uint32(s.TID))
				dst = appendU32(dst, uint32(s.Query))
				dst = appendInt(dst, s.Job)
				dst = appendI64(dst, s.Start)
				dst = appendI64(dst, s.Dur)
			}
		}
	case PollReply:
		dst = append(dst, tagPollReply)
		var flags byte
		if m.Wait {
			flags |= 1
		}
		if m.Shutdown {
			flags |= 2
		}
		if m.Drain {
			flags |= 4
		}
		dst = append(dst, flags)
		dst = appendU32(dst, uint32(len(m.Queries)))
		for _, q := range m.Queries {
			dst = appendInt(dst, q.Query)
			dst = appendJobs(dst, q.Jobs)
		}
		dst = appendU32(dst, uint32(len(m.Done)))
		for _, q := range m.Done {
			dst = appendInt(dst, q)
		}
		dst = appendU32(dst, uint32(len(m.Dropped)))
		for _, q := range m.Dropped {
			dst = appendInt(dst, q)
		}
		// Optional trailing grant-trace section: one (query, context) entry
		// per traced grant. Untraced replies omit it entirely.
		traced := 0
		for _, q := range m.Queries {
			if !q.Trace.Zero() {
				traced++
			}
		}
		if traced > 0 {
			dst = appendU32(dst, uint32(traced))
			for _, q := range m.Queries {
				if q.Trace.Zero() {
					continue
				}
				dst = appendInt(dst, q.Query)
				dst = appendTrace(dst, q.Trace)
			}
		}
	case QuerySpecRequest:
		dst = append(dst, tagQuerySpecRequest)
		dst = appendInt(dst, m.Site)
		dst = appendInt(dst, m.Query)
	case ResultAck:
		dst = append(dst, tagResultAck)
		dst = appendStr(dst, m.Err)
		dst = appendU32(dst, uint32(m.Code))
	case ResultRequest:
		dst = append(dst, tagResultRequest)
		dst = appendInt(dst, m.Site)
		dst = appendInt(dst, m.Query)
	case PutReq:
		dst = append(dst, tagPutReq)
		dst = appendStr(dst, m.Key)
		return dst, m.Data, nil
	case PutResp:
		dst = append(dst, tagPutResp)
		dst = appendStr(dst, m.Err)
		dst = appendU32(dst, uint32(m.Code))
	case GetReq:
		dst = append(dst, tagGetReq)
		dst = appendStr(dst, m.Key)
		dst = appendI64(dst, m.Off)
		dst = appendI64(dst, m.Len)
	case GetResp:
		dst = append(dst, tagGetResp)
		dst = appendStr(dst, m.Err)
		dst = appendU32(dst, uint32(m.Code))
		return dst, m.Data, nil
	case StatReq:
		dst = append(dst, tagStatReq)
		dst = appendStr(dst, m.Key)
	case StatResp:
		dst = append(dst, tagStatResp)
		dst = appendI64(dst, m.Size)
		dst = appendStr(dst, m.Err)
		dst = appendU32(dst, uint32(m.Code))
	case ListReq:
		dst = append(dst, tagListReq)
		dst = appendStr(dst, m.Prefix)
	case ListResp:
		dst = append(dst, tagListResp)
		dst = appendU32(dst, uint32(len(m.Keys)))
		for _, k := range m.Keys {
			dst = appendStr(dst, k)
		}
	default:
		return dst, nil, fmt.Errorf("%w: %T", ErrUnknownType, m)
	}
	return dst, nil, nil
}

// ---------------------------------------------------------------------------
// Decoding.

// frameReader reads a frame body field by field, tracking the bytes that
// remain so every embedded length and count is validated against the frame
// size BEFORE anything is allocated.
type frameReader struct {
	r       io.Reader
	n       int // body bytes not yet consumed
	scratch [8]byte
}

func (f *frameReader) read(p []byte) error {
	if len(p) > f.n {
		return ErrTruncatedFrame
	}
	if _, err := io.ReadFull(f.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncatedFrame
		}
		return err
	}
	f.n -= len(p)
	return nil
}

func (f *frameReader) u32() (uint32, error) {
	if err := f.read(f.scratch[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(f.scratch[:4]), nil
}

func (f *frameReader) u64() (uint64, error) {
	if err := f.read(f.scratch[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(f.scratch[:8]), nil
}

func (f *frameReader) int() (int, error) {
	v, err := f.u64()
	return int(int64(v)), err
}

func (f *frameReader) i64() (int64, error) {
	v, err := f.u64()
	return int64(v), err
}

func (f *frameReader) u8() (byte, error) {
	if err := f.read(f.scratch[:1]); err != nil {
		return 0, err
	}
	return f.scratch[0], nil
}

// count reads a u32 element count and validates count*elemSize against the
// remaining frame bytes, so a hostile count cannot drive a huge allocation.
func (f *frameReader) count(elemSize int) (int, error) {
	v, err := f.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n < 0 || n*elemSize > f.n {
		return 0, fmt.Errorf("%w: count %d × %d bytes exceeds frame", ErrCorruptFrame, n, elemSize)
	}
	return n, nil
}

func (f *frameReader) bytes() ([]byte, error) {
	n, err := f.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if err := f.read(b); err != nil {
		return nil, err
	}
	return b, nil
}

func (f *frameReader) str() (string, error) {
	b, err := f.bytes()
	return string(b), err
}

// tail reads the frame's trailing bulk payload — everything not yet consumed
// — into a buffer from alloc (nil alloc ⇒ make). Zero remaining bytes yield
// a nil slice, matching the encoder's treatment of nil payloads.
func (f *frameReader) tail(alloc func(int) []byte) ([]byte, error) {
	if f.n == 0 {
		return nil, nil
	}
	var b []byte
	if alloc != nil {
		b = alloc(f.n)
	} else {
		b = make([]byte, f.n)
	}
	if err := f.read(b); err != nil {
		return nil, err
	}
	return b, nil
}

// trace reads one TraceContext (two u64 words).
func (f *frameReader) trace() (TraceContext, error) {
	var t TraceContext
	var err error
	if t.TraceID, err = f.u64(); err != nil {
		return t, err
	}
	t.SpanID, err = f.u64()
	return t, err
}

// optTrace reads a trailing optional TraceContext: zero when the frame has
// no bytes left (an untraced or pre-trace peer), the context otherwise.
func (f *frameReader) optTrace() (TraceContext, error) {
	if f.n == 0 {
		return TraceContext{}, nil
	}
	return f.trace()
}

// optPolicy reads a trailing optional ElasticPolicy: zero when the frame
// has no bytes left (a policy-free or pre-policy peer), the 32-byte policy
// block otherwise.
func (f *frameReader) optPolicy() (ElasticPolicy, error) {
	var p ElasticPolicy
	if f.n == 0 {
		return p, nil
	}
	d, err := f.i64()
	if err != nil {
		return p, err
	}
	p.Deadline = time.Duration(d)
	bits, err := f.u64()
	if err != nil {
		return p, err
	}
	p.Budget = math.Float64frombits(bits)
	if p.MinWorkers, err = f.int(); err != nil {
		return p, err
	}
	p.MaxWorkers, err = f.int()
	return p, err
}

// ints reads a u32 count followed by that many u64-encoded ints.
func (f *frameReader) ints() ([]int, error) {
	n, err := f.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		if out[i], err = f.int(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (f *frameReader) jobs() ([]jobs.Job, error) {
	n, err := f.count(jobWire)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	js := make([]jobs.Job, n)
	for i := range js {
		id, err := f.u64()
		if err != nil {
			return nil, err
		}
		site, err := f.u32()
		if err != nil {
			return nil, err
		}
		file, err := f.u32()
		if err != nil {
			return nil, err
		}
		seq, err := f.u32()
		if err != nil {
			return nil, err
		}
		off, err := f.u64()
		if err != nil {
			return nil, err
		}
		size, err := f.u64()
		if err != nil {
			return nil, err
		}
		units, err := f.u32()
		if err != nil {
			return nil, err
		}
		js[i] = jobs.Job{
			ID:   int(int64(id)),
			Site: int(int32(site)),
			Ref: chunk.Ref{
				File:   int(int32(file)),
				Seq:    int(int32(seq)),
				Offset: int64(off),
				Size:   int64(size),
				Units:  int(int32(units)),
			},
		}
	}
	return js, nil
}

// DecodeBinaryBody decodes one frame body (everything after the length word
// and tag) from r. bodyLen is the body's byte count; alloc, when non-nil,
// supplies the buffer for a trailing bulk payload (the transport passes
// bufpool.Get). The returned error is or wraps one of the typed errors
// above; the decoder never panics on malformed input.
func DecodeBinaryBody(tag byte, bodyLen int, r io.Reader, alloc func(int) []byte) (Message, error) {
	var d BodyDecoder
	return d.Decode(tag, bodyLen, r, alloc)
}

// BodyDecoder is a reusable DecodeBinaryBody: its internal frame reader
// escapes into io.Reader calls, so a caller decoding many frames (one
// transport connection) holds one BodyDecoder and avoids re-allocating the
// state per frame. Not goroutine-safe; zero value is ready to use.
type BodyDecoder struct {
	f frameReader
}

// Decode decodes one frame body exactly like DecodeBinaryBody.
func (d *BodyDecoder) Decode(tag byte, bodyLen int, r io.Reader, alloc func(int) []byte) (Message, error) {
	if bodyLen < 0 {
		return nil, ErrCorruptFrame
	}
	d.f.r, d.f.n = r, bodyLen
	m, err := decodeBody(tag, &d.f, alloc)
	if err != nil {
		return nil, err
	}
	if d.f.n != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %T", ErrCorruptFrame, d.f.n, m)
	}
	return m, nil
}

func decodeBody(tag byte, f *frameReader, alloc func(int) []byte) (Message, error) {
	switch tag {
	case tagHello:
		var m Hello
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		if m.Cluster, err = f.str(); err != nil {
			return nil, err
		}
		if m.Cores, err = f.int(); err != nil {
			return nil, err
		}
		if m.Codec, err = f.int(); err != nil {
			return nil, err
		}
		if m.Proto, err = f.int(); err != nil {
			return nil, err
		}
		if m.Trace, err = f.optTrace(); err != nil {
			return nil, err
		}
		if m.Policy, err = f.optPolicy(); err != nil {
			return nil, err
		}
		return m, nil
	case tagJobSpec:
		var m JobSpec
		var err error
		if m.App, err = f.str(); err != nil {
			return nil, err
		}
		if m.Params, err = f.bytes(); err != nil {
			return nil, err
		}
		if m.UnitSize, err = f.int(); err != nil {
			return nil, err
		}
		if m.GroupBytes, err = f.int(); err != nil {
			return nil, err
		}
		if m.Index, err = f.bytes(); err != nil {
			return nil, err
		}
		if m.GroupSize, err = f.int(); err != nil {
			return nil, err
		}
		if m.Checkpoint, err = f.bytes(); err != nil {
			return nil, err
		}
		if m.HeartbeatEvery, err = f.i64(); err != nil {
			return nil, err
		}
		if m.Codec, err = f.int(); err != nil {
			return nil, err
		}
		if m.Query, err = f.int(); err != nil {
			return nil, err
		}
		if m.Trace, err = f.optTrace(); err != nil {
			return nil, err
		}
		if m.Policy, err = f.optPolicy(); err != nil {
			return nil, err
		}
		return m, nil
	case tagJobRequest:
		var m JobRequest
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		if m.N, err = f.int(); err != nil {
			return nil, err
		}
		return m, nil
	case tagJobGrant:
		var m JobGrant
		w, err := f.u8()
		if err != nil {
			return nil, err
		}
		m.Wait = w != 0
		if m.Jobs, err = f.jobs(); err != nil {
			return nil, err
		}
		return m, nil
	case tagJobsDone:
		var m JobsDone
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		if m.Query, err = f.int(); err != nil {
			return nil, err
		}
		if m.Jobs, err = f.jobs(); err != nil {
			return nil, err
		}
		if m.Trace, err = f.optTrace(); err != nil {
			return nil, err
		}
		return m, nil
	case tagJobsDoneAck:
		var m JobsDoneAck
		var err error
		if m.Err, err = f.str(); err != nil {
			return nil, err
		}
		code, err := f.u32()
		if err != nil {
			return nil, err
		}
		m.Code = int(int32(code))
		n, err := f.count(8)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.Dup = make([]int, n)
			for i := range m.Dup {
				if m.Dup[i], err = f.int(); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case tagHeartbeat:
		var m Heartbeat
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		return m, nil
	case tagCheckpointSave, tagCheckpointSaveTraced:
		var m CheckpointSave
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		if m.Seq, err = f.int(); err != nil {
			return nil, err
		}
		if m.Query, err = f.int(); err != nil {
			return nil, err
		}
		if tag == tagCheckpointSaveTraced {
			if m.Trace, err = f.trace(); err != nil {
				return nil, err
			}
		}
		if m.Data, err = f.tail(alloc); err != nil {
			return nil, err
		}
		return m, nil
	case tagCheckpointAck:
		var m CheckpointAck
		var err error
		if m.Err, err = f.str(); err != nil {
			return nil, err
		}
		code, err := f.u32()
		if err != nil {
			return nil, err
		}
		m.Code = int(int32(code))
		return m, nil
	case tagReductionResult, tagReductionResultTraced:
		var m ReductionResult
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		if m.Query, err = f.int(); err != nil {
			return nil, err
		}
		if m.Processing, err = f.i64(); err != nil {
			return nil, err
		}
		if m.Retrieval, err = f.i64(); err != nil {
			return nil, err
		}
		if m.Sync, err = f.i64(); err != nil {
			return nil, err
		}
		if m.LocalJobs, err = f.int(); err != nil {
			return nil, err
		}
		if m.StolenJobs, err = f.int(); err != nil {
			return nil, err
		}
		if tag == tagReductionResultTraced {
			if m.Trace, err = f.trace(); err != nil {
				return nil, err
			}
		}
		if m.Object, err = f.tail(alloc); err != nil {
			return nil, err
		}
		return m, nil
	case tagFinished:
		var m Finished
		var err error
		if m.Object, err = f.tail(alloc); err != nil {
			return nil, err
		}
		return m, nil
	case tagErrorReply:
		var m ErrorReply
		var err error
		if m.Err, err = f.str(); err != nil {
			return nil, err
		}
		code, err := f.u32()
		if err != nil {
			return nil, err
		}
		m.Code = int(int32(code))
		return m, nil
	case tagSiteSpec:
		var m SiteSpec
		var err error
		if m.HeartbeatEvery, err = f.i64(); err != nil {
			return nil, err
		}
		if m.Codec, err = f.int(); err != nil {
			return nil, err
		}
		if m.Trace, err = f.optTrace(); err != nil {
			return nil, err
		}
		return m, nil
	case tagPollRequest:
		var m PollRequest
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		if m.N, err = f.int(); err != nil {
			return nil, err
		}
		if f.n > 0 {
			if m.NowNS, err = f.i64(); err != nil {
				return nil, err
			}
			ns, err := f.count(wireSpanMin)
			if err != nil {
				return nil, err
			}
			if ns > 0 {
				m.Spans = make([]WireSpan, ns)
				for i := range m.Spans {
					s := &m.Spans[i]
					if s.Trace, err = f.trace(); err != nil {
						return nil, err
					}
					if s.Name, err = f.str(); err != nil {
						return nil, err
					}
					if s.Cat, err = f.str(); err != nil {
						return nil, err
					}
					tid, err := f.u32()
					if err != nil {
						return nil, err
					}
					s.TID = int(int32(tid))
					q, err := f.u32()
					if err != nil {
						return nil, err
					}
					s.Query = int(int32(q))
					if s.Job, err = f.int(); err != nil {
						return nil, err
					}
					if s.Start, err = f.i64(); err != nil {
						return nil, err
					}
					if s.Dur, err = f.i64(); err != nil {
						return nil, err
					}
				}
			}
		}
		return m, nil
	case tagPollReply:
		var m PollReply
		flags, err := f.u8()
		if err != nil {
			return nil, err
		}
		m.Wait = flags&1 != 0
		m.Shutdown = flags&2 != 0
		m.Drain = flags&4 != 0
		// Each query entry costs at least its ID plus a jobs count word.
		nq, err := f.count(8 + 4)
		if err != nil {
			return nil, err
		}
		if nq > 0 {
			m.Queries = make([]QueryJobs, nq)
			for i := range m.Queries {
				if m.Queries[i].Query, err = f.int(); err != nil {
					return nil, err
				}
				if m.Queries[i].Jobs, err = f.jobs(); err != nil {
					return nil, err
				}
			}
		}
		if m.Done, err = f.ints(); err != nil {
			return nil, err
		}
		if m.Dropped, err = f.ints(); err != nil {
			return nil, err
		}
		if f.n > 0 {
			// Trailing grant-trace section (traced sessions only).
			nt, err := f.count(8 + traceWire)
			if err != nil {
				return nil, err
			}
			for i := 0; i < nt; i++ {
				q, err := f.int()
				if err != nil {
					return nil, err
				}
				tc, err := f.trace()
				if err != nil {
					return nil, err
				}
				for j := range m.Queries {
					if m.Queries[j].Query == q {
						m.Queries[j].Trace = tc
						break
					}
				}
			}
		}
		return m, nil
	case tagQuerySpecRequest:
		var m QuerySpecRequest
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		if m.Query, err = f.int(); err != nil {
			return nil, err
		}
		return m, nil
	case tagResultAck:
		var m ResultAck
		var err error
		if m.Err, err = f.str(); err != nil {
			return nil, err
		}
		code, err := f.u32()
		if err != nil {
			return nil, err
		}
		m.Code = int(int32(code))
		return m, nil
	case tagResultRequest:
		var m ResultRequest
		var err error
		if m.Site, err = f.int(); err != nil {
			return nil, err
		}
		if m.Query, err = f.int(); err != nil {
			return nil, err
		}
		return m, nil
	case tagPutReq:
		var m PutReq
		var err error
		if m.Key, err = f.str(); err != nil {
			return nil, err
		}
		if m.Data, err = f.tail(alloc); err != nil {
			return nil, err
		}
		return m, nil
	case tagPutResp:
		var m PutResp
		var err error
		if m.Err, err = f.str(); err != nil {
			return nil, err
		}
		code, err := f.u32()
		if err != nil {
			return nil, err
		}
		m.Code = int(int32(code))
		return m, nil
	case tagGetReq:
		var m GetReq
		var err error
		if m.Key, err = f.str(); err != nil {
			return nil, err
		}
		if m.Off, err = f.i64(); err != nil {
			return nil, err
		}
		if m.Len, err = f.i64(); err != nil {
			return nil, err
		}
		return m, nil
	case tagGetResp:
		var m GetResp
		var err error
		if m.Err, err = f.str(); err != nil {
			return nil, err
		}
		code, err := f.u32()
		if err != nil {
			return nil, err
		}
		m.Code = int(int32(code))
		if m.Data, err = f.tail(alloc); err != nil {
			return nil, err
		}
		return m, nil
	case tagStatReq:
		var m StatReq
		var err error
		if m.Key, err = f.str(); err != nil {
			return nil, err
		}
		return m, nil
	case tagStatResp:
		var m StatResp
		var err error
		if m.Size, err = f.i64(); err != nil {
			return nil, err
		}
		if m.Err, err = f.str(); err != nil {
			return nil, err
		}
		code, err := f.u32()
		if err != nil {
			return nil, err
		}
		m.Code = int(int32(code))
		return m, nil
	case tagListReq:
		var m ListReq
		var err error
		if m.Prefix, err = f.str(); err != nil {
			return nil, err
		}
		return m, nil
	case tagListResp:
		var m ListResp
		n, err := f.count(4) // each key costs at least its u32 length word
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.Keys = make([]string, n)
			for i := range m.Keys {
				if m.Keys[i], err = f.str(); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: tag %d", ErrUnknownType, tag)
	}
}

// ---------------------------------------------------------------------------
// Whole-frame helpers (tests, fuzzing, and non-streaming callers).

// AppendFrame encodes m as one complete frame — length word, tag, body,
// payload — appended to dst.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	lenAt := len(dst)
	dst = appendU32(dst, 0) // patched below
	meta, payload, err := AppendBinary(dst, m)
	if err != nil {
		return dst[:lenAt], err
	}
	total := (len(meta) - lenAt - 4) + len(payload)
	if total > MaxFrameBytes {
		return dst[:lenAt], fmt.Errorf("%w: %d bytes", ErrFrameTooBig, total)
	}
	binary.LittleEndian.PutUint32(meta[lenAt:], uint32(total))
	return append(meta, payload...), nil
}

// DecodeFrame decodes the first complete frame in data, returning the
// message and the number of bytes consumed. It is the fuzzing entry point
// and must return a typed error — never panic — on any input.
func DecodeFrame(data []byte) (Message, int, error) {
	if len(data) < 4 {
		return nil, 0, ErrTruncatedFrame
	}
	n := binary.LittleEndian.Uint32(data)
	if n > MaxFrameBytes {
		return nil, 0, fmt.Errorf("%w: length word %d", ErrFrameTooBig, n)
	}
	if n < 1 {
		return nil, 0, fmt.Errorf("%w: empty frame", ErrCorruptFrame)
	}
	if uint32(len(data)-4) < n {
		return nil, 0, ErrTruncatedFrame
	}
	body := data[5 : 4+n]
	m, err := DecodeBinaryBody(data[4], int(n)-1, bytes.NewReader(body), nil)
	if err != nil {
		return nil, 0, err
	}
	return m, 4 + int(n), nil
}
