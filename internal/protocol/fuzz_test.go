package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder. The decoder
// must never panic and never allocate beyond the frame cap: any outcome
// other than a clean (Message, n, nil) or a typed error is a bug. Run with
//
//	go test -fuzz=FuzzDecodeFrame ./internal/protocol
func FuzzDecodeFrame(f *testing.F) {
	// Seed with every valid message type plus the malformed shapes from the
	// table test so the fuzzer starts at the interesting boundaries.
	for _, m := range sampleMessages() {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		if len(frame) > 5 {
			f.Add(frame[:len(frame)-3]) // truncated body
			f.Add(frame[2:])            // desynced stream
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{4, 0, 0, 0, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < 5 || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
		}
		if m == nil {
			t.Fatal("DecodeFrame returned nil message with nil error")
		}
		// A successfully decoded message must survive a re-encode/re-decode
		// round trip (the encoder is the source of truth for the layout).
		frame, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("re-encoding decoded %T: %v", m, err)
		}
		m2, _, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("re-decoding %T: %v", m, err)
		}
		frame2, err := AppendFrame(nil, m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatalf("%T not canonical:\n first %x\nsecond %x", m, frame, frame2)
		}
	})
}
