package protocol

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"
)

// prePolicyFrames hand-builds the PRE-POLICY binary layout of the messages
// that grew the optional trailing ElasticPolicy block, in both their
// untraced and traced trailing-field states, paired with the message a
// modern encoder would produce them from (policy zero). The layouts are the
// compat contract with already-deployed peers.
func prePolicyFrames() []struct {
	name  string
	msg   Message
	frame []byte
} {
	hello := []byte{tagHello}
	hello = appendInt(hello, 3)
	hello = appendStr(hello, "cloud")
	hello = appendInt(hello, 16)
	hello = appendInt(hello, WireBinary)
	hello = appendInt(hello, ProtoMulti)

	helloTr := append([]byte(nil), hello...)
	helloTr = appendTrace(helloTr, TraceContext{SpanID: 5})

	spec := []byte{tagJobSpec}
	spec = appendStr(spec, "knn")
	spec = appendBytes(spec, []byte{1, 2})
	spec = appendInt(spec, 4096)
	spec = appendInt(spec, 256<<10)
	spec = appendBytes(spec, nil)
	spec = appendInt(spec, 8)
	spec = appendBytes(spec, nil)
	spec = appendI64(spec, 5e8)
	spec = appendInt(spec, WireBinary)
	spec = appendInt(spec, 2)

	specTr := append([]byte(nil), spec...)
	specTr = appendTrace(specTr, TraceContext{TraceID: 3})

	base := Hello{Site: 3, Cluster: "cloud", Cores: 16, Codec: WireBinary, Proto: ProtoMulti}
	traced := base
	traced.Trace = TraceContext{SpanID: 5}
	js := JobSpec{App: "knn", Params: []byte{1, 2}, UnitSize: 4096, GroupBytes: 256 << 10,
		GroupSize: 8, HeartbeatEvery: 5e8, Codec: WireBinary, Query: 2}
	jsTr := js
	jsTr.Trace = TraceContext{TraceID: 3}

	return []struct {
		name  string
		msg   Message
		frame []byte
	}{
		{"Hello", base, buildFrame(hello)},
		{"Hello+trace", traced, buildFrame(helloTr)},
		{"JobSpec", js, buildFrame(spec)},
		{"JobSpec+trace", jsTr, buildFrame(specTr)},
	}
}

// TestZeroPolicyEncodesBitIdentical: a modern encoder given a zero policy
// must emit frames byte-identical to the pre-policy layouts (untraced and
// traced alike), so a policy-free session is indistinguishable on the wire.
func TestZeroPolicyEncodesBitIdentical(t *testing.T) {
	for _, tc := range prePolicyFrames() {
		got, err := AppendFrame(nil, tc.msg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, tc.frame) {
			t.Errorf("%s: zero-policy frame differs from pre-policy layout:\n got %x\nwant %x", tc.name, got, tc.frame)
		}
	}
}

// TestPrePolicyFramesDecodeToZeroPolicy: frames from a pre-policy peer
// decode cleanly with the policy at its zero value.
func TestPrePolicyFramesDecodeToZeroPolicy(t *testing.T) {
	for _, tc := range prePolicyFrames() {
		got, n, err := DecodeFrame(tc.frame)
		if err != nil {
			t.Fatalf("%s: decode pre-policy frame: %v", tc.name, err)
		}
		if n != len(tc.frame) {
			t.Errorf("%s: consumed %d of %d bytes", tc.name, n, len(tc.frame))
		}
		if !reflect.DeepEqual(got, tc.msg) {
			t.Errorf("%s: pre-policy decode:\n got %#v\nwant %#v", tc.name, got, tc.msg)
		}
	}
}

// TestPolicyForcesTraceBlock: a non-zero policy on an untraced message puts
// a zero trace context on the wire ahead of it, and the round trip recovers
// exactly (zero trace, full policy — including the float budget bits).
func TestPolicyForcesTraceBlock(t *testing.T) {
	in := Hello{Site: 1, Cluster: "c", Cores: 2, Proto: ProtoMulti,
		Policy: ElasticPolicy{Deadline: 120e9, Budget: 0.1, MinWorkers: 1, MaxWorkers: 8}}
	frame, err := AppendFrame(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	// Frame = len(4) + pre-policy hello body + trace(16) + policy(32).
	bare, err := AppendFrame(nil, Hello{Site: 1, Cluster: "c", Cores: 2, Proto: ProtoMulti})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(bare) + traceWire + 32; len(frame) != want {
		t.Errorf("policy frame length = %d, want %d", len(frame), want)
	}
	got, _, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := got.(Hello)
	if !ok || !reflect.DeepEqual(h, in) {
		t.Errorf("round trip: got %#v want %#v", got, in)
	}
	if math.Float64bits(h.Policy.Budget) != math.Float64bits(in.Policy.Budget) {
		t.Errorf("budget bits changed: %x vs %x",
			math.Float64bits(h.Policy.Budget), math.Float64bits(in.Policy.Budget))
	}
}

// Pre-policy gob shapes, as a peer compiled before ElasticPolicy existed
// would declare them.
type (
	prePolicyHello struct {
		Site    int
		Cluster string
		Cores   int
		Codec   int
		Proto   int
		Trace   TraceContext
	}
	prePolicyJobSpec struct {
		App   string
		Query int
		Trace TraceContext
	}
)

// TestGobPrePolicyPeerCompat: gob sessions interoperate in both directions
// across the policy field addition.
func TestGobPrePolicyPeerCompat(t *testing.T) {
	// Old → new: the missing Policy field reads as zero.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(prePolicyHello{Site: 3, Cluster: "cloud", Cores: 16}); err != nil {
		t.Fatal(err)
	}
	var h Hello
	if err := gob.NewDecoder(&buf).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Site != 3 || !h.Policy.Zero() {
		t.Errorf("old→new Hello = %+v", h)
	}

	// New → old: the old shape ignores the Policy field it never declared.
	buf.Reset()
	in := JobSpec{App: "knn", Query: 2, Policy: ElasticPolicy{Deadline: 60e9, MaxWorkers: 4}}
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var old prePolicyJobSpec
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatal(err)
	}
	if old.App != "knn" || old.Query != 2 {
		t.Errorf("new→old JobSpec = %+v", old)
	}
}
