package protocol

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/jobs"
)

// allMessages enumerates one instance of every wire message.
func allMessages() []Message {
	return []Message{
		Hello{Site: 1, Cluster: "cloud", Cores: 16},
		JobSpec{App: "knn", Params: []byte{1}, UnitSize: 32, GroupBytes: 1 << 18, Index: []byte{2}, GroupSize: 8},
		JobRequest{Site: 1, N: 4},
		JobGrant{Jobs: []jobs.Job{{ID: 7, Site: 0}}},
		JobsDone{Site: 0, Jobs: []jobs.Job{{ID: 7}}},
		ReductionResult{Site: 1, Object: []byte{3, 4}, Processing: 5, Retrieval: 6, Sync: 7, LocalJobs: 8, StolenJobs: 9},
		Finished{Object: []byte{5}},
		ErrorReply{Err: "boom"},
		PutReq{Key: "k", Data: []byte("v")},
		PutResp{Err: ""},
		GetReq{Key: "k", Off: 1, Len: 2},
		GetResp{Data: []byte("d")},
		StatReq{Key: "k"},
		StatResp{Size: 42},
		ListReq{Prefix: "p"},
		ListResp{Keys: []string{"a", "b"}},
	}
}

type envelope struct{ M Message }

// TestEveryMessageGobRegistered round-trips each message through gob inside
// an interface-typed envelope — exactly how the transport carries them. A
// type missing from the init() registration fails here.
func TestEveryMessageGobRegistered(t *testing.T) {
	for _, m := range allMessages() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(envelope{M: m}); err != nil {
			t.Errorf("%T: encode: %v", m, err)
			continue
		}
		var out envelope
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Errorf("%T: decode: %v", m, err)
			continue
		}
		if out.M == nil {
			t.Errorf("%T: decoded nil", m)
		}
	}
}

func TestMessageFieldFidelity(t *testing.T) {
	var buf bytes.Buffer
	in := ReductionResult{Site: 3, Object: []byte{9, 8, 7}, Processing: 123, Retrieval: 456, Sync: 789, LocalJobs: 10, StolenJobs: 11}
	if err := gob.NewEncoder(&buf).Encode(envelope{M: in}); err != nil {
		t.Fatal(err)
	}
	var out envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got, ok := out.M.(ReductionResult)
	if !ok {
		t.Fatalf("decoded %T", out.M)
	}
	if got.Site != in.Site || got.Processing != in.Processing || got.StolenJobs != in.StolenJobs ||
		!bytes.Equal(got.Object, in.Object) {
		t.Errorf("round trip lost fields: %+v vs %+v", got, in)
	}
}

func TestJobGrantCarriesRefs(t *testing.T) {
	var buf bytes.Buffer
	grant := JobGrant{Jobs: []jobs.Job{{ID: 1, Site: 1}, {ID: 2, Site: 0}}}
	grant.Jobs[0].Ref.Offset = 4096
	grant.Jobs[0].Ref.Size = 65536
	grant.Jobs[0].Ref.Units = 16
	if err := gob.NewEncoder(&buf).Encode(envelope{M: grant}); err != nil {
		t.Fatal(err)
	}
	var out envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	g := out.M.(JobGrant)
	if len(g.Jobs) != 2 || g.Jobs[0].Ref.Size != 65536 || g.Jobs[0].Ref.Units != 16 {
		t.Errorf("grant round trip: %+v", g)
	}
}
