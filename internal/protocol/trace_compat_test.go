package protocol

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/jobs"
)

// buildFrame wraps a hand-encoded body in the u32 length prefix, exactly as
// a pre-trace peer would put it on the wire.
func buildFrame(body []byte) []byte {
	return append(appendU32(nil, uint32(len(body))), body...)
}

// legacyFrames hand-builds the PRE-TRACE binary layout of every message that
// grew optional trailing trace fields, paired with the message a modern
// encoder would produce it from (all trace fields zero). The layouts follow
// the documented field order and must never change: they are the compat
// contract with already-deployed peers.
func legacyFrames() []struct {
	name  string
	msg   Message
	frame []byte
} {
	js := sampleJobs(2)

	hello := []byte{tagHello}
	hello = appendInt(hello, 3)
	hello = appendStr(hello, "cloud")
	hello = appendInt(hello, 16)
	hello = appendInt(hello, WireBinary)
	hello = appendInt(hello, ProtoMulti)

	done := []byte{tagJobsDone}
	done = appendInt(done, 1)
	done = appendInt(done, 3)
	done = appendJobs(done, js)

	spec := []byte{tagSiteSpec}
	spec = appendI64(spec, 25e7)
	spec = appendInt(spec, WireBinary)

	poll := []byte{tagPollRequest}
	poll = appendInt(poll, 2)
	poll = appendInt(poll, 9)

	reply := []byte{tagPollReply}
	reply = append(reply, 1) // flags: Wait
	reply = appendU32(reply, 1)
	reply = appendInt(reply, 1)
	reply = appendJobs(reply, js)
	reply = appendU32(reply, 2) // Done
	reply = appendInt(reply, 3)
	reply = appendInt(reply, 4)
	reply = appendU32(reply, 0) // Dropped

	ckpt := []byte{tagCheckpointSave}
	ckpt = appendInt(ckpt, 1)
	ckpt = appendInt(ckpt, 42)
	ckpt = appendInt(ckpt, 0)
	ckpt = append(ckpt, []byte("checkpoint-bytes")...)

	robj := []byte{tagReductionResult}
	robj = appendInt(robj, 2)
	robj = appendInt(robj, 4)
	robj = appendI64(robj, 123)
	robj = appendI64(robj, 456)
	robj = appendI64(robj, 789)
	robj = appendInt(robj, 10)
	robj = appendInt(robj, 3)
	robj = append(robj, 9, 8, 7)

	return []struct {
		name  string
		msg   Message
		frame []byte
	}{
		{"Hello", Hello{Site: 3, Cluster: "cloud", Cores: 16, Codec: WireBinary, Proto: ProtoMulti}, buildFrame(hello)},
		{"JobsDone", JobsDone{Site: 1, Query: 3, Jobs: js}, buildFrame(done)},
		{"SiteSpec", SiteSpec{HeartbeatEvery: 25e7, Codec: WireBinary}, buildFrame(spec)},
		{"PollRequest", PollRequest{Site: 2, N: 9}, buildFrame(poll)},
		{"PollReply", PollReply{Queries: []QueryJobs{{Query: 1, Jobs: js}}, Done: []int{3, 4}, Wait: true}, buildFrame(reply)},
		{"CheckpointSave", CheckpointSave{Site: 1, Seq: 42, Data: []byte("checkpoint-bytes")}, buildFrame(ckpt)},
		{"ReductionResult", ReductionResult{Site: 2, Query: 4, Object: []byte{9, 8, 7}, Processing: 123,
			Retrieval: 456, Sync: 789, LocalJobs: 10, StolenJobs: 3}, buildFrame(robj)},
	}
}

// TestZeroTraceEncodesBitIdentical: a modern encoder given zero trace fields
// must emit frames byte-identical to the pre-trace layout, so an old peer's
// session is indistinguishable on the wire.
func TestZeroTraceEncodesBitIdentical(t *testing.T) {
	for _, tc := range legacyFrames() {
		got, err := AppendFrame(nil, tc.msg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, tc.frame) {
			t.Errorf("%s: zero-trace frame differs from legacy layout:\n got %x\nwant %x", tc.name, got, tc.frame)
		}
	}
}

// TestLegacyFramesDecodeToZeroTrace: frames from a pre-trace peer decode
// cleanly, with every trace field at its zero value.
func TestLegacyFramesDecodeToZeroTrace(t *testing.T) {
	for _, tc := range legacyFrames() {
		got, n, err := DecodeFrame(tc.frame)
		if err != nil {
			t.Fatalf("%s: decode legacy frame: %v", tc.name, err)
		}
		if n != len(tc.frame) {
			t.Errorf("%s: consumed %d of %d bytes", tc.name, n, len(tc.frame))
		}
		if !reflect.DeepEqual(got, tc.msg) {
			t.Errorf("%s: legacy decode:\n got %#v\nwant %#v", tc.name, got, tc.msg)
		}
	}
}

// Pre-trace shapes of the gob messages, exactly as an old binary would
// declare them. Gob matches struct fields by name, so these stand in for a
// peer compiled before the trace fields existed.
type (
	oldHello struct {
		Site    int
		Cluster string
		Cores   int
		Codec   int
		Proto   int
	}
	oldPollRequest struct {
		Site int
		N    int
	}
	oldJobsDone struct {
		Site  int
		Query int
		Jobs  []jobs.Job
	}
)

// TestGobOldPeerCompat: gob sessions interoperate in both directions — an
// old peer's stream decodes with zero trace fields, and a new peer's stream
// (trace fields present but zero-valued are omitted; non-zero are ignored)
// decodes on the old shape.
func TestGobOldPeerCompat(t *testing.T) {
	// Old → new: unknown-to-the-sender fields come out zero.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(oldHello{Site: 3, Cluster: "cloud", Cores: 16}); err != nil {
		t.Fatal(err)
	}
	var h Hello
	if err := gob.NewDecoder(&buf).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Site != 3 || h.Cluster != "cloud" || !h.Trace.Zero() {
		t.Errorf("old→new Hello = %+v", h)
	}

	// New → old: the old shape ignores the trace fields it never declared.
	buf.Reset()
	in := PollRequest{Site: 2, N: 8, NowNS: 99, Spans: []WireSpan{{Name: "job 1", Cat: "job"}}}
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var old oldPollRequest
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatal(err)
	}
	if old.Site != 2 || old.N != 8 {
		t.Errorf("new→old PollRequest = %+v", old)
	}

	// And with a traced JobsDone carrying jobs.
	buf.Reset()
	jd := JobsDone{Site: 1, Query: 3, Jobs: sampleJobs(2), Trace: TraceContext{TraceID: 7, SpanID: 1}}
	if err := gob.NewEncoder(&buf).Encode(jd); err != nil {
		t.Fatal(err)
	}
	var oldJD oldJobsDone
	if err := gob.NewDecoder(&buf).Decode(&oldJD); err != nil {
		t.Fatal(err)
	}
	if oldJD.Site != 1 || oldJD.Query != 3 || len(oldJD.Jobs) != 2 {
		t.Errorf("new→old JobsDone = %+v", oldJD)
	}
}

// TestTracedMessagesGobRegistered: the traced fields survive the
// interface-typed envelope the transport actually uses.
func TestTracedMessagesGobRegistered(t *testing.T) {
	msgs := []Message{
		Hello{Site: 4, Trace: TraceContext{SpanID: 5}},
		JobSpec{App: "knn", Query: 2, Trace: TraceContext{TraceID: 3}},
		JobsDone{Site: 1, Query: 3, Trace: TraceContext{TraceID: 4, SpanID: 9}},
		CheckpointSave{Site: 1, Seq: 7, Trace: TraceContext{TraceID: 6, SpanID: 2}},
		ReductionResult{Site: 0, Query: 1, Trace: TraceContext{TraceID: 2, SpanID: 8}},
		SiteSpec{Trace: TraceContext{TraceID: 4, SpanID: 1}},
		PollRequest{Site: 2, N: 8, NowNS: 123, Spans: []WireSpan{
			{Trace: TraceContext{TraceID: 1, SpanID: 2}, Name: "job 3", Cat: "job", TID: 1, Job: 3, Start: 10, Dur: 20}}},
		PollReply{Queries: []QueryJobs{{Query: 1, Trace: TraceContext{TraceID: 2, SpanID: 11}}}},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(envelope{M: m}); err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		var out envelope
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(out.M, m) {
			t.Errorf("%T: traced gob round trip:\n got %#v\nwant %#v", m, out.M, m)
		}
	}
}
