// Package protocol defines the messages exchanged between the framework's
// node types: the HEAD node (global job assignment and final global
// reduction), the per-cluster MASTER nodes (cluster-local job pools), and
// the object-store daemons. Messages are carried by internal/transport in
// one of two codecs: the hand-rolled length-prefixed binary format defined
// in binary.go (the data-plane default — no reflection, no intermediate
// copies) or the original gob envelope, now explicitly opt-in
// (-wire-codec=gob on BOTH peers) and negotiated per session via
// Hello.Codec/JobSpec.Codec.
package protocol

import (
	"encoding/gob"
	"time"

	"repro/internal/jobs"
)

// Message is the marker interface for every wire message.
type Message interface{ protoMsg() }

// TraceContext correlates the events of one query (and one exchange within
// it) across processes: the head assigns each admitted query a TraceID, and
// individual grants or submissions carry a SpanID under it. The zero value
// means "no trace" — peers predating trace propagation read (and send) zero
// values in both codecs, and senders omit the fields entirely on the wire
// when zero, so untraced sessions are bit-identical to the old format.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Zero reports whether t carries no trace correlation.
func (t TraceContext) Zero() bool { return t.TraceID == 0 && t.SpanID == 0 }

// ElasticPolicy is a per-query elastic provisioning policy carried on the
// admission path: a submitting peer proposes a session default in
// Hello.Policy, and the head round-trips each query's resolved policy in
// JobSpec.Policy (fetched via QuerySpecRequest). The zero value means "no
// policy" — peers predating per-query policies read (and send) zero values
// in both codecs, and senders omit the fields entirely on the wire when
// zero, so policy-free sessions are bit-identical to the old format.
type ElasticPolicy struct {
	Deadline   time.Duration // target completion time from admission (0 = none)
	Budget     float64       // hard cap on attributed instance spend in dollars (0 = unlimited)
	MinWorkers int           // floor on the burst fleet while the query is active
	MaxWorkers int           // ceiling this query will ever ask the arbiter for (0 = arbiter default)
}

// Zero reports whether p carries no elastic policy.
func (p ElasticPolicy) Zero() bool {
	return p.Deadline == 0 && p.Budget == 0 && p.MinWorkers == 0 && p.MaxWorkers == 0
}

// WireSpan is one completed master-side span shipped to the head,
// piggybacked on PollRequest. Timestamps are on the MASTER's clock; the
// head aligns them using the clock offset derived from PollRequest.NowNS
// before merging the span into its own trace buffer.
type WireSpan struct {
	Trace TraceContext
	Name  string
	Cat   string
	TID   int   // master-side thread (processing lane)
	Query int   // owning query
	Job   int   // job the span covers (-1 for non-job spans)
	Start int64 // span start, nanoseconds on the master's clock
	Dur   int64 // span length, nanoseconds
}

// ---------------------------------------------------------------------------
// Head ↔ Master.

// Wire codec identifiers carried in Hello/JobSpec for live negotiation.
// Gob ignores unknown and missing struct fields, so a peer predating the
// binary codec reads Codec as its zero value (WireGob) and the session
// simply stays on gob.
const (
	WireGob    = 0 // reflection-driven gob envelope (compat fallback)
	WireBinary = 1 // length-prefixed fixed-layout binary codec (binary.go)
)

// Session protocol versions carried in Hello.Proto. A multi-query master
// registers once and interleaves jobs from every admitted query over the
// same connection. ProtoSingle — one query bound per session — completed
// its deprecation window: the head now rejects ProtoSingle Hellos with a
// typed ErrorReply, and the identifier remains only so old peers get a
// clear error instead of a hang.
const (
	ProtoSingle = 0 // retired: rejected by current heads with an ErrorReply
	ProtoMulti  = 1 // shared session; head replies with SiteSpec, specs fetched per query
)

// Hello registers a master with the head node.
type Hello struct {
	Site    int    // site id of the cluster's storage (matches the placement)
	Cluster string // human-readable cluster name ("local", "cloud", …)
	Cores   int    // processing threads the cluster contributes
	// Codec is the best wire codec the master supports (WireGob/WireBinary).
	// The head confirms the session codec in JobSpec.Codec (ProtoSingle) or
	// SiteSpec.Codec (ProtoMulti); both sides upgrade after that exchange.
	Codec int
	// Proto selects the session shape (ProtoSingle/ProtoMulti). Old masters
	// send no field and read as ProtoSingle.
	Proto int
	// Trace advertises trace propagation: a master that can record and ship
	// spans sends a non-zero SpanID (its session span). The head confirms
	// with a non-zero SiteSpec.Trace/JobSpec.Trace iff its tracer is live;
	// only after that exchange do frames carry trace data. Old peers read
	// the zero value and the session stays untraced.
	Trace TraceContext
	// Policy proposes a session-default elastic policy: the head adopts it
	// as its default (applied to queries admitted without their own policy)
	// when it has none configured. Zero means no proposal; old peers read
	// the zero value.
	Policy ElasticPolicy
}

// JobSpec is the head's response to Hello: everything a cluster needs to
// start processing.
type JobSpec struct {
	App        string // registered reducer name
	Params     []byte // application parameters for the reducer factory
	UnitSize   int    // dataset unit size in bytes
	GroupBytes int    // cache-sized unit-group budget
	Index      []byte // serialized chunk.Index
	GroupSize  int    // jobs per master request (0 = master's choice)
	// Checkpoint, when non-empty, is the encoded fault.Checkpoint a
	// re-registering cluster resumes from (its last persisted reduction
	// object plus the job IDs that object covers).
	Checkpoint []byte
	// Fault carries the head's recovery parameters so the cluster runtime
	// can enable heartbeats and checkpointing without local configuration.
	HeartbeatEvery int64 // nanoseconds between heartbeats; 0 disables
	// Codec is the wire codec the head selected for the rest of the session:
	// min(head's best, Hello.Codec). The JobSpec itself still travels in the
	// codec the Hello arrived in; everything after is in the selected codec.
	Codec int
	// Query identifies which admitted query this spec belongs to. Single-query
	// sessions always see query 0.
	Query int
	// Trace is the query's trace context (TraceID assigned at admission),
	// non-zero only when the head's tracer is live and the master advertised
	// trace support in Hello.Trace.
	Trace TraceContext
	// Policy is the query's resolved elastic policy (deadline, budget,
	// min/max workers) as the head's arbiter sees it. Informational for
	// masters; zero when the query has none.
	Policy ElasticPolicy
}

// JobRequest asks the head for up to N more jobs for the requesting cluster.
//
// Deprecated: part of the retired ProtoSingle session shape; current heads
// no longer serve it. The type remains for codec compatibility tests and so
// old frames still decode. Use PollRequest.
type JobRequest struct {
	Site int
	N    int
}

// JobGrant carries a group of jobs. An empty Jobs slice with Wait false
// means the global pool is exhausted and the cluster should finish its
// local reduction; Wait true means the pool is momentarily empty but
// recovery or speculation may still produce work — poll again.
//
// Deprecated: part of the retired ProtoSingle session shape; current heads
// no longer send it. Use PollReply.
type JobGrant struct {
	Jobs []jobs.Job
	Wait bool
}

// JobsDone reports completed jobs back to the head so it can maintain the
// per-file contention counters that drive the stealing heuristic.
type JobsDone struct {
	Site  int
	Query int // owning query (0 in single-query sessions)
	Jobs  []jobs.Job
	// Trace echoes the grant's trace context so the head can correlate the
	// commit with the grant span. Zero on untraced sessions.
	Trace TraceContext
}

// JobsDoneAck is the head's commit response: Dup lists the job IDs (from
// the JobsDone batch) whose contributions were already supplied by another
// copy — the cluster must NOT fold those chunks.
type JobsDoneAck struct {
	Dup  []int
	Err  string
	Code int // typed error code (Code* constants) when Err != ""
}

// Heartbeat renews a cluster's liveness lease. Fire-and-forget; the head
// never replies.
type Heartbeat struct {
	Site int
}

// CheckpointSave asks the head to persist a cluster's reduction-object
// checkpoint (an encoded fault.Checkpoint) in the configured store.
type CheckpointSave struct {
	Site  int
	Seq   int
	Query int // owning query (0 in single-query sessions)
	// Trace carries the owning query's trace context. In the binary codec a
	// non-zero context selects the traced frame tag (the payload tail leaves
	// no room for optional trailing fields); zero contexts encode with the
	// original tag, bit-identical to old frames.
	Trace TraceContext
	Data  []byte
}

// CheckpointAck acknowledges a CheckpointSave.
type CheckpointAck struct {
	Err  string
	Code int // typed error code (Code* constants) when Err != ""
}

// ReductionResult delivers a cluster's encoded reduction object to the head
// once the cluster has processed all its assigned jobs, together with the
// cluster's measured time decomposition (for the experiment reports).
type ReductionResult struct {
	Site       int
	Query      int // owning query (0 in single-query sessions)
	Object     []byte
	Processing int64 // nanoseconds
	Retrieval  int64
	Sync       int64
	LocalJobs  int
	StolenJobs int
	// Trace carries the owning query's trace context (see CheckpointSave for
	// the binary-codec encoding rule).
	Trace TraceContext
}

// Finished is the head's broadcast after the final global reduction: the
// run is complete. Masters measure their idle (sync) time up to this point.
type Finished struct {
	Object []byte // final encoded reduction object
}

// ErrorReply reports a failure for the preceding request. Code classifies
// the failure (CodeFenced, CodeUnknownQuery, …) so clients can rebuild the
// head's typed errors across the wire; 0 means unclassified.
type ErrorReply struct {
	Err  string
	Code int
}

// ---------------------------------------------------------------------------
// Head ↔ Master, multi-query sessions (Hello.Proto == ProtoMulti).

// SiteSpec is the head's reply to a multi-query Hello: session-level
// parameters only. Per-query JobSpecs are fetched with QuerySpecRequest as
// queries first appear in a PollReply.
type SiteSpec struct {
	HeartbeatEvery int64 // nanoseconds between heartbeats; 0 disables
	Codec          int   // session codec: min(head's best, Hello.Codec)
	// Trace confirms trace propagation for the session: non-zero (the head's
	// session trace context) iff the head's tracer is live and the master
	// advertised support in Hello.Trace. The master ships spans and stamps
	// its frames only after seeing a non-zero value here.
	Trace TraceContext
}

// PollRequest asks the head for up to N more jobs for the site, drawn from
// every admitted query by weighted fair share.
type PollRequest struct {
	Site int
	N    int
	// NowNS is the master's clock reading when the request was built,
	// letting the head compute a per-site clock offset and align shipped
	// span timestamps onto its own timeline. Zero on untraced sessions.
	NowNS int64
	// Spans carries master-side spans completed since the last poll —
	// trace shipping piggybacks on poll traffic rather than adding RPCs.
	Spans []WireSpan
}

// QueryJobs is one query's slice of a poll grant.
type QueryJobs struct {
	Query int
	Jobs  []jobs.Job
	// Trace is the grant's trace context: TraceID identifies the query,
	// SpanID the head-side grant span covering this batch. Masters stamp
	// the process spans they record for these jobs with the same TraceID.
	Trace TraceContext
}

// PollReply answers a PollRequest. Queries carries the granted jobs grouped
// by query. Done lists queries whose pools drained and now expect this
// site's reduction result; Dropped lists canceled queries whose state the
// master should discard without submitting. Wait set with no grants means
// the pools are momentarily empty but recovery/speculation/admission may
// still produce work — poll again. Shutdown means the head is closing and
// the master should finalize what it has and exit. Drain means the head has
// decommissioned this site: every obligation is settled (all held jobs
// committed, all owed reduction objects submitted) and the master should
// exit cleanly.
type PollReply struct {
	Queries  []QueryJobs
	Done     []int
	Dropped  []int
	Wait     bool
	Shutdown bool
	Drain    bool
}

// QuerySpecRequest fetches the JobSpec for one admitted query — sent the
// first time a multi-query master sees the query in a PollReply, and again
// after re-registration (the spec then carries the recovery checkpoint).
type QuerySpecRequest struct {
	Site  int
	Query int
}

// ResultAck acknowledges a ReductionResult in a multi-query session. Unlike
// the legacy Finished broadcast it does not block for the global reduction:
// the master keeps serving other queries and learns nothing of the final
// object (the submitting client reads it from the head).
type ResultAck struct {
	Err  string
	Code int
}

// ResultRequest asks the head for one query's final global reduction
// object. The head blocks the session until the query finishes, then
// replies with Finished (or ErrorReply if the query failed or was
// canceled). This is how a client that wants the final object waits for it
// over the wire now that ProtoSingle's blocking ReductionResult→Finished
// exchange is retired.
type ResultRequest struct {
	Site  int
	Query int
}

// ---------------------------------------------------------------------------
// Object store (S3 stand-in).

// Error codes classifying object-store failures for retry policies. The
// zero value (CodeOK) keeps old servers' responses (no Code field on the
// wire) reading as success-or-unclassified.
const (
	CodeOK        = 0 // no error
	CodeTransient = 1 // retryable: connection trouble, transient backend error
	CodeNotFound  = 2 // permanent: no such object
	CodeBadRange  = 3 // permanent: byte range outside the object
)

// Error codes classifying head failures, carried by ErrorReply.Code and
// ResultAck.Code so clients can reconstruct the head's typed errors
// (head.OpError sentinels, fault.ErrFenced) across the wire. Disjoint from
// the object-store codes above so a misrouted reply cannot be misread.
const (
	CodeFenced       = 10 // site's lease expired; re-register to resume
	CodeUnknownQuery = 11 // query ID never admitted at this head
	CodeCanceled     = 12 // query was canceled
	CodeStale        = 13 // stale checkpoint sequence or superseded request
	CodeShutdown     = 14 // head is shutting down
)

// PutReq stores an object.
type PutReq struct {
	Key  string
	Data []byte
}

// PutResp acknowledges a PutReq.
type PutResp struct {
	Err  string
	Code int // error classification (CodeOK, CodeTransient, …)
}

// GetReq fetches Len bytes of an object starting at Off. Len < 0 means
// "to the end".
type GetReq struct {
	Key string
	Off int64
	Len int64
}

// GetResp returns the requested range.
type GetResp struct {
	Data []byte
	Err  string
	Code int // error classification (CodeOK, CodeTransient, …)
}

// StatReq asks for an object's size.
type StatReq struct {
	Key string
}

// StatResp returns an object's size, or an error.
type StatResp struct {
	Size int64
	Err  string
	Code int // error classification (CodeOK, CodeTransient, …)
}

// ListReq asks for all keys with the given prefix.
type ListReq struct {
	Prefix string
}

// ListResp returns matching keys in sorted order.
type ListResp struct {
	Keys []string
}

func (Hello) protoMsg()            {}
func (JobSpec) protoMsg()          {}
func (JobRequest) protoMsg()       {}
func (JobGrant) protoMsg()         {}
func (JobsDone) protoMsg()         {}
func (JobsDoneAck) protoMsg()      {}
func (Heartbeat) protoMsg()        {}
func (CheckpointSave) protoMsg()   {}
func (CheckpointAck) protoMsg()    {}
func (ReductionResult) protoMsg()  {}
func (Finished) protoMsg()         {}
func (ErrorReply) protoMsg()       {}
func (SiteSpec) protoMsg()         {}
func (PollRequest) protoMsg()      {}
func (PollReply) protoMsg()        {}
func (QuerySpecRequest) protoMsg() {}
func (ResultAck) protoMsg()        {}
func (ResultRequest) protoMsg()    {}
func (PutReq) protoMsg()           {}
func (PutResp) protoMsg()          {}
func (GetReq) protoMsg()           {}
func (GetResp) protoMsg()          {}
func (StatReq) protoMsg()          {}
func (StatResp) protoMsg()         {}
func (ListReq) protoMsg()          {}
func (ListResp) protoMsg()         {}

func init() {
	gob.Register(Hello{})
	gob.Register(JobSpec{})
	gob.Register(JobRequest{})
	gob.Register(JobGrant{})
	gob.Register(JobsDone{})
	gob.Register(JobsDoneAck{})
	gob.Register(Heartbeat{})
	gob.Register(CheckpointSave{})
	gob.Register(CheckpointAck{})
	gob.Register(ReductionResult{})
	gob.Register(Finished{})
	gob.Register(ErrorReply{})
	gob.Register(SiteSpec{})
	gob.Register(PollRequest{})
	gob.Register(PollReply{})
	gob.Register(QuerySpecRequest{})
	gob.Register(ResultAck{})
	gob.Register(ResultRequest{})
	gob.Register(PutReq{})
	gob.Register(PutResp{})
	gob.Register(GetReq{})
	gob.Register(GetResp{})
	gob.Register(StatReq{})
	gob.Register(StatResp{})
	gob.Register(ListReq{})
	gob.Register(ListResp{})
}
