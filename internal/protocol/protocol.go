// Package protocol defines the messages exchanged between the framework's
// node types: the HEAD node (global job assignment and final global
// reduction), the per-cluster MASTER nodes (cluster-local job pools), and
// the object-store daemons. Messages are gob-encoded and carried by
// internal/transport.
package protocol

import (
	"encoding/gob"

	"repro/internal/jobs"
)

// Message is the marker interface for every wire message.
type Message interface{ protoMsg() }

// ---------------------------------------------------------------------------
// Head ↔ Master.

// Hello registers a master with the head node.
type Hello struct {
	Site    int    // site id of the cluster's storage (matches the placement)
	Cluster string // human-readable cluster name ("local", "cloud", …)
	Cores   int    // processing threads the cluster contributes
}

// JobSpec is the head's response to Hello: everything a cluster needs to
// start processing.
type JobSpec struct {
	App        string // registered reducer name
	Params     []byte // application parameters for the reducer factory
	UnitSize   int    // dataset unit size in bytes
	GroupBytes int    // cache-sized unit-group budget
	Index      []byte // serialized chunk.Index
	GroupSize  int    // jobs per master request (0 = master's choice)
}

// JobRequest asks the head for up to N more jobs for the requesting cluster.
type JobRequest struct {
	Site int
	N    int
}

// JobGrant carries a group of jobs. An empty Jobs slice means the global
// pool is exhausted and the cluster should finish its local reduction.
type JobGrant struct {
	Jobs []jobs.Job
}

// JobsDone reports completed jobs back to the head so it can maintain the
// per-file contention counters that drive the stealing heuristic.
type JobsDone struct {
	Site int
	Jobs []jobs.Job
}

// ReductionResult delivers a cluster's encoded reduction object to the head
// once the cluster has processed all its assigned jobs, together with the
// cluster's measured time decomposition (for the experiment reports).
type ReductionResult struct {
	Site       int
	Object     []byte
	Processing int64 // nanoseconds
	Retrieval  int64
	Sync       int64
	LocalJobs  int
	StolenJobs int
}

// Finished is the head's broadcast after the final global reduction: the
// run is complete. Masters measure their idle (sync) time up to this point.
type Finished struct {
	Object []byte // final encoded reduction object
}

// ErrorReply reports a failure for the preceding request.
type ErrorReply struct {
	Err string
}

// ---------------------------------------------------------------------------
// Object store (S3 stand-in).

// PutReq stores an object.
type PutReq struct {
	Key  string
	Data []byte
}

// PutResp acknowledges a PutReq.
type PutResp struct {
	Err string
}

// GetReq fetches Len bytes of an object starting at Off. Len < 0 means
// "to the end".
type GetReq struct {
	Key string
	Off int64
	Len int64
}

// GetResp returns the requested range.
type GetResp struct {
	Data []byte
	Err  string
}

// StatReq asks for an object's size.
type StatReq struct {
	Key string
}

// StatResp returns an object's size, or an error.
type StatResp struct {
	Size int64
	Err  string
}

// ListReq asks for all keys with the given prefix.
type ListReq struct {
	Prefix string
}

// ListResp returns matching keys in sorted order.
type ListResp struct {
	Keys []string
}

func (Hello) protoMsg()           {}
func (JobSpec) protoMsg()         {}
func (JobRequest) protoMsg()      {}
func (JobGrant) protoMsg()        {}
func (JobsDone) protoMsg()        {}
func (ReductionResult) protoMsg() {}
func (Finished) protoMsg()        {}
func (ErrorReply) protoMsg()      {}
func (PutReq) protoMsg()          {}
func (PutResp) protoMsg()         {}
func (GetReq) protoMsg()          {}
func (GetResp) protoMsg()         {}
func (StatReq) protoMsg()         {}
func (StatResp) protoMsg()        {}
func (ListReq) protoMsg()         {}
func (ListResp) protoMsg()        {}

func init() {
	gob.Register(Hello{})
	gob.Register(JobSpec{})
	gob.Register(JobRequest{})
	gob.Register(JobGrant{})
	gob.Register(JobsDone{})
	gob.Register(ReductionResult{})
	gob.Register(Finished{})
	gob.Register(ErrorReply{})
	gob.Register(PutReq{})
	gob.Register(PutResp{})
	gob.Register(GetReq{})
	gob.Register(GetResp{})
	gob.Register(StatReq{})
	gob.Register(StatResp{})
	gob.Register(ListReq{})
	gob.Register(ListResp{})
}
