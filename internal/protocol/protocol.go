// Package protocol defines the messages exchanged between the framework's
// node types: the HEAD node (global job assignment and final global
// reduction), the per-cluster MASTER nodes (cluster-local job pools), and
// the object-store daemons. Messages are carried by internal/transport in
// one of two codecs: the hand-rolled length-prefixed binary format defined
// in binary.go (the data-plane default — no reflection, no intermediate
// copies) or the original gob envelope, retained one release as a compat
// fallback and negotiated per session via Hello.Codec/JobSpec.Codec.
package protocol

import (
	"encoding/gob"

	"repro/internal/jobs"
)

// Message is the marker interface for every wire message.
type Message interface{ protoMsg() }

// ---------------------------------------------------------------------------
// Head ↔ Master.

// Wire codec identifiers carried in Hello/JobSpec for live negotiation.
// Gob ignores unknown and missing struct fields, so a peer predating the
// binary codec reads Codec as its zero value (WireGob) and the session
// simply stays on gob.
const (
	WireGob    = 0 // reflection-driven gob envelope (compat fallback)
	WireBinary = 1 // length-prefixed fixed-layout binary codec (binary.go)
)

// Hello registers a master with the head node.
type Hello struct {
	Site    int    // site id of the cluster's storage (matches the placement)
	Cluster string // human-readable cluster name ("local", "cloud", …)
	Cores   int    // processing threads the cluster contributes
	// Codec is the best wire codec the master supports (WireGob/WireBinary).
	// The head confirms the session codec in JobSpec.Codec; both sides
	// upgrade their connection after that exchange.
	Codec int
}

// JobSpec is the head's response to Hello: everything a cluster needs to
// start processing.
type JobSpec struct {
	App        string // registered reducer name
	Params     []byte // application parameters for the reducer factory
	UnitSize   int    // dataset unit size in bytes
	GroupBytes int    // cache-sized unit-group budget
	Index      []byte // serialized chunk.Index
	GroupSize  int    // jobs per master request (0 = master's choice)
	// Checkpoint, when non-empty, is the encoded fault.Checkpoint a
	// re-registering cluster resumes from (its last persisted reduction
	// object plus the job IDs that object covers).
	Checkpoint []byte
	// Fault carries the head's recovery parameters so the cluster runtime
	// can enable heartbeats and checkpointing without local configuration.
	HeartbeatEvery int64 // nanoseconds between heartbeats; 0 disables
	// Codec is the wire codec the head selected for the rest of the session:
	// min(head's best, Hello.Codec). The JobSpec itself still travels in the
	// codec the Hello arrived in; everything after is in the selected codec.
	Codec int
}

// JobRequest asks the head for up to N more jobs for the requesting cluster.
type JobRequest struct {
	Site int
	N    int
}

// JobGrant carries a group of jobs. An empty Jobs slice with Wait false
// means the global pool is exhausted and the cluster should finish its
// local reduction; Wait true means the pool is momentarily empty but
// recovery or speculation may still produce work — poll again.
type JobGrant struct {
	Jobs []jobs.Job
	Wait bool
}

// JobsDone reports completed jobs back to the head so it can maintain the
// per-file contention counters that drive the stealing heuristic.
type JobsDone struct {
	Site int
	Jobs []jobs.Job
}

// JobsDoneAck is the head's commit response: Dup lists the job IDs (from
// the JobsDone batch) whose contributions were already supplied by another
// copy — the cluster must NOT fold those chunks.
type JobsDoneAck struct {
	Dup []int
	Err string
}

// Heartbeat renews a cluster's liveness lease. Fire-and-forget; the head
// never replies.
type Heartbeat struct {
	Site int
}

// CheckpointSave asks the head to persist a cluster's reduction-object
// checkpoint (an encoded fault.Checkpoint) in the configured store.
type CheckpointSave struct {
	Site int
	Seq  int
	Data []byte
}

// CheckpointAck acknowledges a CheckpointSave.
type CheckpointAck struct {
	Err string
}

// ReductionResult delivers a cluster's encoded reduction object to the head
// once the cluster has processed all its assigned jobs, together with the
// cluster's measured time decomposition (for the experiment reports).
type ReductionResult struct {
	Site       int
	Object     []byte
	Processing int64 // nanoseconds
	Retrieval  int64
	Sync       int64
	LocalJobs  int
	StolenJobs int
}

// Finished is the head's broadcast after the final global reduction: the
// run is complete. Masters measure their idle (sync) time up to this point.
type Finished struct {
	Object []byte // final encoded reduction object
}

// ErrorReply reports a failure for the preceding request.
type ErrorReply struct {
	Err string
}

// ---------------------------------------------------------------------------
// Object store (S3 stand-in).

// Error codes classifying object-store failures for retry policies. The
// zero value (CodeOK) keeps old servers' responses (no Code field on the
// wire) reading as success-or-unclassified.
const (
	CodeOK        = 0 // no error
	CodeTransient = 1 // retryable: connection trouble, transient backend error
	CodeNotFound  = 2 // permanent: no such object
	CodeBadRange  = 3 // permanent: byte range outside the object
)

// PutReq stores an object.
type PutReq struct {
	Key  string
	Data []byte
}

// PutResp acknowledges a PutReq.
type PutResp struct {
	Err  string
	Code int // error classification (CodeOK, CodeTransient, …)
}

// GetReq fetches Len bytes of an object starting at Off. Len < 0 means
// "to the end".
type GetReq struct {
	Key string
	Off int64
	Len int64
}

// GetResp returns the requested range.
type GetResp struct {
	Data []byte
	Err  string
	Code int // error classification (CodeOK, CodeTransient, …)
}

// StatReq asks for an object's size.
type StatReq struct {
	Key string
}

// StatResp returns an object's size, or an error.
type StatResp struct {
	Size int64
	Err  string
	Code int // error classification (CodeOK, CodeTransient, …)
}

// ListReq asks for all keys with the given prefix.
type ListReq struct {
	Prefix string
}

// ListResp returns matching keys in sorted order.
type ListResp struct {
	Keys []string
}

func (Hello) protoMsg()           {}
func (JobSpec) protoMsg()         {}
func (JobRequest) protoMsg()      {}
func (JobGrant) protoMsg()        {}
func (JobsDone) protoMsg()        {}
func (JobsDoneAck) protoMsg()     {}
func (Heartbeat) protoMsg()       {}
func (CheckpointSave) protoMsg()  {}
func (CheckpointAck) protoMsg()   {}
func (ReductionResult) protoMsg() {}
func (Finished) protoMsg()        {}
func (ErrorReply) protoMsg()      {}
func (PutReq) protoMsg()          {}
func (PutResp) protoMsg()         {}
func (GetReq) protoMsg()          {}
func (GetResp) protoMsg()         {}
func (StatReq) protoMsg()         {}
func (StatResp) protoMsg()        {}
func (ListReq) protoMsg()         {}
func (ListResp) protoMsg()        {}

func init() {
	gob.Register(Hello{})
	gob.Register(JobSpec{})
	gob.Register(JobRequest{})
	gob.Register(JobGrant{})
	gob.Register(JobsDone{})
	gob.Register(JobsDoneAck{})
	gob.Register(Heartbeat{})
	gob.Register(CheckpointSave{})
	gob.Register(CheckpointAck{})
	gob.Register(ReductionResult{})
	gob.Register(Finished{})
	gob.Register(ErrorReply{})
	gob.Register(PutReq{})
	gob.Register(PutResp{})
	gob.Register(GetReq{})
	gob.Register(GetResp{})
	gob.Register(StatReq{})
	gob.Register(StatResp{})
	gob.Register(ListReq{})
	gob.Register(ListResp{})
}
