package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/apps"
	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// PR 3's data-plane benchmark harness: the wire-codec chunk roundtrip (gob
// vs binary side by side) plus the Fig1 real-engine ns/op after the kernel
// and pooling work. `make bench-dataplane` runs TestEmitBenchDataplane with
// BENCH_DATAPLANE_OUT set, which writes the numbers to BENCH_3.json and
// asserts the PR's acceptance bars: ≥2× throughput and ≥10× fewer
// allocs/op for binary vs gob on a 12.8 MB chunk.

// dataplaneChunkBytes is the experiments' standard chunk size.
const dataplaneChunkBytes = 12_800_000

// benchCodecRoundTrip measures one 12.8 MB chunk echoed over an in-process
// connection pair under the given codec (the same shape as
// transport.BenchmarkWire_ChunkRoundtrip, reproduced here so the emitter
// can run it via testing.Benchmark).
func benchCodecRoundTrip(codec transport.Codec) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		a, peer := transport.PipeWith(codec)
		defer a.Close()
		defer peer.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				m, err := peer.Recv()
				if err != nil {
					return
				}
				if err := peer.Send(m); err != nil {
					return
				}
				if resp, ok := m.(protocol.GetResp); ok {
					bufpool.Put(resp.Data)
				}
			}
		}()
		payload := bufpool.Get(dataplaneChunkBytes)
		defer bufpool.Put(payload)
		req := protocol.GetResp{Data: payload}
		b.SetBytes(2 * dataplaneChunkBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Send(req); err != nil {
				b.Fatal(err)
			}
			m, err := a.Recv()
			if err != nil {
				b.Fatal(err)
			}
			if resp, ok := m.(protocol.GetResp); ok {
				bufpool.Put(resp.Data)
			}
		}
		b.StopTimer()
		a.Close()
		<-done
	})
}

type codecNumbers struct {
	NsPerOp     int64   `json:"ns_op"`
	MBPerSec    float64 `json:"mb_s"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
}

func toNumbers(r testing.BenchmarkResult) codecNumbers {
	mbs := 0.0
	if r.NsPerOp() > 0 {
		mbs = float64(r.Bytes) / float64(r.NsPerOp()) * 1e9 / 1e6
	}
	return codecNumbers{
		NsPerOp:     r.NsPerOp(),
		MBPerSec:    mbs,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// TestEmitBenchDataplane runs the data-plane benchmarks and writes
// BENCH_3.json. It is a no-op unless BENCH_DATAPLANE_OUT names the output
// file, so plain `go test ./...` stays fast.
func TestEmitBenchDataplane(t *testing.T) {
	out := os.Getenv("BENCH_DATAPLANE_OUT")
	if out == "" {
		t.Skip("BENCH_DATAPLANE_OUT not set; run via make bench-dataplane")
	}

	gob := benchCodecRoundTrip(transport.CodecGob)
	bin := benchCodecRoundTrip(transport.CodecBinary)
	gn, bn := toNumbers(gob), toNumbers(bin)
	throughputRatio := float64(gn.NsPerOp) / float64(bn.NsPerOp)
	allocsRatio := float64(gn.AllocsPerOp) / float64(bn.AllocsPerOp)
	t.Logf("wire chunk roundtrip: gob %d ns/op %d allocs/op, binary %d ns/op %d allocs/op (throughput ×%.1f, allocs ×%.1f)",
		gn.NsPerOp, gn.AllocsPerOp, bn.NsPerOp, bn.AllocsPerOp, throughputRatio, allocsRatio)

	// Acceptance bars from the PR issue. Alloc counts are deterministic;
	// the throughput ratio runs ~6× in practice, so 2× has wide margin.
	if throughputRatio < 2 {
		t.Errorf("binary codec is only %.2f× gob throughput, want ≥2×", throughputRatio)
	}
	if allocsRatio < 10 {
		t.Errorf("binary codec has only %.2f× fewer allocs/op than gob, want ≥10×", allocsRatio)
	}

	report := map[string]any{
		"bench": "dataplane",
		"pr":    3,
		"wire_chunk_roundtrip": map[string]any{
			"payload_bytes":    dataplaneChunkBytes,
			"gob":              gn,
			"binary":           bn,
			"throughput_ratio": throughputRatio,
			"allocs_ratio":     allocsRatio,
		},
	}

	// Fig1 real-engine ns/op over the optimized kernels (skipped in short
	// mode: the wire numbers above are the gate; these are for the record).
	if !testing.Short() {
		engine := map[string]any{}
		for _, app := range []string{"knn", "kmeans"} {
			app := app
			r := testing.Benchmark(func(b *testing.B) {
				ix, src, knnP, kmP := fig1Points(b, 50_000, 8)
				var red core.Reducer
				var err error
				if app == "knn" {
					red, err = apps.NewKNNReducer(knnP)
				} else {
					red, err = apps.NewKMeansReducer(kmP)
				}
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				benchGR(b, red, ix, src)
			})
			engine[app+"_gr_ns_op"] = r.NsPerOp()
			t.Logf("fig1 engine %s: %d ns/op", app, r.NsPerOp())
		}
		report["fig1_engine"] = engine
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
