package repro

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/head"
	"repro/internal/hybridsim"
	"repro/internal/jobs"
	"repro/internal/protocol"
	"repro/internal/stagecache"
)

// PR 8's cache-tier benchmark harness. `make bench-cache` runs
// TestEmitBenchCache with BENCH_CACHE_OUT set, which writes BENCH_8.json and
// asserts the PR's acceptance bars:
//
//   - ≥3× warm speedup on the sim benchmark: a cloud-only cluster re-scanning
//     a campus-hosted dataset runs its second pass from the burst-side
//     replica at S3 rates instead of back over the shared WAN pipe;
//   - <2% overhead with the cache disabled: the live data plane with no cache
//     interposed (and with one attached but inert) costs within 2% of the
//     bare path in heap allocations — the same deterministic quantity the
//     observability and elastic gates assert, because shared CI runners
//     jitter wall-clock far beyond the budget.

// cacheSumReducer sums little-endian uint32 units (the live workload).
type cacheSumReducer struct{}

type cacheSumObj struct{ total uint64 }

func (cacheSumReducer) NewObject() core.Object { return &cacheSumObj{} }
func (cacheSumReducer) LocalReduce(obj core.Object, unit []byte) error {
	obj.(*cacheSumObj).total += uint64(binary.LittleEndian.Uint32(unit))
	return nil
}
func (cacheSumReducer) GlobalReduce(dst, src core.Object) error {
	dst.(*cacheSumObj).total += src.(*cacheSumObj).total
	return nil
}
func (cacheSumReducer) Encode(obj core.Object) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(nil, obj.(*cacheSumObj).total), nil
}
func (cacheSumReducer) Decode(data []byte) (core.Object, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("want 8 bytes, got %d", len(data))
	}
	return &cacheSumObj{total: binary.LittleEndian.Uint64(data)}, nil
}

func init() {
	core.Register("bench-cache-sum", func([]byte) (core.Reducer, error) { return cacheSumReducer{}, nil })
}

// simStagedMakespan runs the retrieval-bound sim benchmark: a 64-core cloud
// cluster scanning the full campus-hosted dataset (EnvLocal placement, no
// local cluster) for the given number of passes, with or without the
// burst-side cache model.
func simStagedMakespan(t *testing.T, staged bool, iterations int) (time.Duration, *hybridsim.StageStats) {
	t.Helper()
	cfg := experiments.ConfigWithCores(experiments.KNN, experiments.EnvLocal, 0, 64, experiments.SimOptions{})
	if staged {
		cfg.Topology.Stage = experiments.StageModel()
	}
	res, err := hybridsim.RunMulti(hybridsim.MultiConfig{
		Topology: cfg.Topology,
		Seed:     cfg.Seed,
		Queries: []hybridsim.MultiQuery{{
			Name: "knn", App: cfg.App,
			Index: cfg.Index, Placement: cfg.Placement, PoolOpts: cfg.PoolOpts,
			Iterations: iterations,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Total, res.Stage
}

// liveCacheRun executes one in-proc cluster run over an own-site dataset with
// the given cache attached. With every source local, an attached cache is
// pure plumbing: Wrap bypasses own-site sources and the pre-stager sees no
// remote grants — exactly the fast path the <2% gate protects.
func liveCacheRun(t *testing.T, ix *chunk.Index, src *chunk.MemSource, want uint64, cache *stagecache.Cache) {
	t.Helper()
	pool, err := jobs.NewPool(ix, jobs.SplitByFraction(len(ix.Files), 1, 0, 1), jobs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := protocol.JobSpec{App: "bench-cache-sum", UnitSize: 4, GroupBytes: 1 << 10}
	if err := head.EncodeIndexSpec(&spec, ix); err != nil {
		t.Fatal(err)
	}
	h, err := head.New(head.Config{Pool: pool, Reducer: cacheSumReducer{}, Spec: spec, ExpectClusters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(cluster.Config{
		Site: 0, Name: "local", Cores: 4,
		Sources: map[int]chunk.Source{0: src},
		Cache:   cache,
		Head:    cluster.InProc{Head: h},
	}); err != nil {
		t.Fatal(err)
	}
	obj, _, _, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.(*cacheSumObj).total; got != want {
		t.Fatalf("final sum = %d, want %d", got, want)
	}
}

// benchCacheDataset builds the live workload: in-memory uint32 units.
func benchCacheDataset(t *testing.T) (*chunk.Index, *chunk.MemSource, uint64) {
	t.Helper()
	ix, err := chunk.Layout("sum", 200_000, 4, 20_000, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	var want uint64
	var unit int64
	for _, f := range ix.Files {
		buf := make([]byte, f.Size)
		for i := 0; i < int(f.Size/4); i++ {
			v := uint32(unit % 1009)
			binary.LittleEndian.PutUint32(buf[4*i:], v)
			want += uint64(v)
			unit++
		}
		if err := src.WriteFile(f.Name, buf); err != nil {
			t.Fatal(err)
		}
	}
	return ix, src, want
}

// memReplica is a trivial in-memory Replica for the inert-cache arm.
type memReplica map[string][]byte

func (r memReplica) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	r[key] = cp
	return nil
}

func (r memReplica) Get(key string) ([]byte, error) {
	data, ok := r[key]
	if !ok {
		return nil, fmt.Errorf("no such key %q", key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// TestEmitBenchCache runs the cache-tier benchmarks and writes BENCH_8.json.
// No-op unless BENCH_CACHE_OUT names the output file, so plain
// `go test ./...` stays fast.
func TestEmitBenchCache(t *testing.T) {
	out := os.Getenv("BENCH_CACHE_OUT")
	if out == "" {
		t.Skip("BENCH_CACHE_OUT not set; run via make bench-cache")
	}

	// Sim benchmark: a pass over the WAN with no cache vs a warm pass from
	// the replica. The warm-pass time is the two-pass makespan minus the
	// one-pass one — on the virtual clock both are exact, not sampled.
	stagedCold, _ := simStagedMakespan(t, true, 1)
	stagedTwo, stagedStats := simStagedMakespan(t, true, 2)
	stagedWarm := stagedTwo - stagedCold
	bareCold, _ := simStagedMakespan(t, false, 1)
	bareTwo, _ := simStagedMakespan(t, false, 2)
	bareWarm := bareTwo - bareCold
	// Warm speedup: the same scan cold with no cache (every byte over the
	// WAN) vs warm with the replica populated. The staged FIRST pass is
	// already faster than the uncached one — pre-staging overlaps bulk
	// staging with execution — so measuring against it would double-count
	// the cache's own benefit.
	speedup := bareCold.Seconds() / stagedWarm.Seconds()
	t.Logf("sim: uncached cold %.1fs, staged cold %.1fs, warm %.1fs (×%.2f); unstaged warm %.1fs",
		bareCold.Seconds(), stagedCold.Seconds(), stagedWarm.Seconds(), speedup, bareWarm.Seconds())
	if speedup < 3 {
		t.Errorf("warm pass is only %.2f× the cold pass, want ≥3×", speedup)
	}
	warmHitRate := 0.0
	if stagedStats != nil && len(stagedStats.ByIter) == 2 {
		warm := stagedStats.ByIter[1]
		if total := warm.Hits + warm.Misses; total > 0 {
			warmHitRate = float64(warm.Hits) / float64(total)
		}
	}
	if warmHitRate < 0.9 {
		t.Errorf("warm-pass hit rate %.2f, want ≥0.90", warmHitRate)
	}

	// Live disabled-overhead gate: the bare data plane vs the same workload
	// with an inert cache attached, in heap allocations.
	ix, src, want := benchCacheDataset(t)
	idle := stagecache.New(stagecache.Config{Replica: memReplica{}}, nil)
	defer idle.Close()
	const rounds = 10
	measure := func(cache *stagecache.Cache) (allocs, bytes uint64) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < rounds; i++ {
			liveCacheRun(t, ix, src, want, cache)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
	}
	liveCacheRun(t, ix, src, want, nil) // warm-up
	bareN, bareB := measure(nil)
	idleN, idleB := measure(idle)
	pct := func(with, without uint64) float64 {
		return 100 * (float64(with) - float64(without)) / float64(without)
	}
	t.Logf("live allocs %d → %d (%+.2f%%), bytes %d → %d (%+.2f%%)",
		bareN, idleN, pct(idleN, bareN), bareB, idleB, pct(idleB, bareB))
	if d := pct(idleN, bareN); d > 2 {
		t.Errorf("disabled-cache alloc-count overhead %.2f%% exceeds the 2%% budget", d)
	}
	if d := pct(idleB, bareB); d > 2 {
		t.Errorf("disabled-cache alloc-bytes overhead %.2f%% exceeds the 2%% budget", d)
	}

	report := map[string]any{
		"bench": "stagecache",
		"pr":    8,
		"sim_warm_speedup": map[string]any{
			"staged_cold_s":   stagedCold.Seconds(),
			"staged_warm_s":   stagedWarm.Seconds(),
			"unstaged_cold_s": bareCold.Seconds(),
			"unstaged_warm_s": bareWarm.Seconds(),
			"speedup":         speedup,
			"warm_hit_rate":   warmHitRate,
		},
		"disabled_overhead": map[string]any{
			"rounds":     rounds,
			"alloc_pct":  pct(idleN, bareN),
			"bytes_pct":  pct(idleB, bareB),
			"allocs_off": bareN,
			"allocs_on":  idleN,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
