// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation:
//
//	BenchmarkFig1_*     — processing-structure comparison (real engines)
//	BenchmarkFig3_*     — execution-time decomposition over the five envs
//	BenchmarkTable1_*   — job assignment / stealing counts
//	BenchmarkTable2_*   — slowdown decomposition
//	BenchmarkFig4_*     — scalability sweep, all data in S3
//	BenchmarkHeadline   — the paper's two summary numbers
//	BenchmarkAblation_* — design-choice ablations
//
// Simulated experiments report their virtual makespans and derived paper
// metrics via b.ReportMetric (sim_s, slowdown_pct, efficiency_pct, …);
// real-engine benchmarks measure actual ns/op.
package repro

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/bufpool"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hybridsim"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/stagecache"
	"repro/internal/workload"
)

// ---------------------------------------------------------------- Figure 1

// fig1Data builds the small in-memory datasets shared by the Fig1 benches.
func fig1Points(b *testing.B, n int64, dim int) (*chunk.Index, chunk.Source, apps.KNNParams, apps.KMeansParams) {
	b.Helper()
	gen := workload.ClusteredPoints{Seed: 7, Dim: dim, K: 8, Spread: 0.05}
	ix, err := chunk.Layout("b1", n, gen.UnitSize(), 20000, 2000)
	if err != nil {
		b.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, src); err != nil {
		b.Fatal(err)
	}
	q := make([]float64, dim)
	centers := make([][]float64, 8)
	for i := range q {
		q[i] = 0.5
	}
	for k := range centers {
		centers[k] = gen.TrueCenter(k)
	}
	return ix, src,
		apps.KNNParams{K: 10, Dim: dim, Query: q},
		apps.KMeansParams{K: 8, Dim: dim, Centers: centers}
}

func benchGR(b *testing.B, r core.Reducer, ix *chunk.Index, src chunk.Source) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.EngineConfig{Reducer: r, Workers: 2, UnitSize: ix.UnitSize}, ix, src); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMR(b *testing.B, job mapreduce.Job, ix *chunk.Index, src chunk.Source) {
	b.Helper()
	b.ReportAllocs()
	job.Workers = 2
	var pairs int64
	for i := 0; i < b.N; i++ {
		res, err := mapreduce.Run(job, ix, src)
		if err != nil {
			b.Fatal(err)
		}
		pairs = res.Metrics.PeakBufferedPairs
	}
	b.ReportMetric(float64(pairs), "peak_pairs")
}

func BenchmarkFig1_KNN_GeneralizedReduction(b *testing.B) {
	ix, src, knnP, _ := fig1Points(b, 50_000, 8)
	r, err := apps.NewKNNReducer(knnP)
	if err != nil {
		b.Fatal(err)
	}
	benchGR(b, r, ix, src)
}

func BenchmarkFig1_KNN_MapReduce(b *testing.B) {
	ix, src, knnP, _ := fig1Points(b, 50_000, 8)
	job, err := apps.KNNMRJob(knnP, false)
	if err != nil {
		b.Fatal(err)
	}
	benchMR(b, job, ix, src)
}

func BenchmarkFig1_KNN_MRCombine(b *testing.B) {
	ix, src, knnP, _ := fig1Points(b, 50_000, 8)
	job, err := apps.KNNMRJob(knnP, true)
	if err != nil {
		b.Fatal(err)
	}
	benchMR(b, job, ix, src)
}

func BenchmarkFig1_KMeans_GeneralizedReduction(b *testing.B) {
	ix, src, _, kmP := fig1Points(b, 50_000, 8)
	r, err := apps.NewKMeansReducer(kmP)
	if err != nil {
		b.Fatal(err)
	}
	benchGR(b, r, ix, src)
}

func BenchmarkFig1_KMeans_MapReduce(b *testing.B) {
	ix, src, _, kmP := fig1Points(b, 50_000, 8)
	job, err := apps.KMeansMRJob(kmP, false)
	if err != nil {
		b.Fatal(err)
	}
	benchMR(b, job, ix, src)
}

func BenchmarkFig1_KMeans_MRCombine(b *testing.B) {
	ix, src, _, kmP := fig1Points(b, 50_000, 8)
	job, err := apps.KMeansMRJob(kmP, true)
	if err != nil {
		b.Fatal(err)
	}
	benchMR(b, job, ix, src)
}

func fig1Graph(b *testing.B) (*chunk.Index, chunk.Source, apps.PageRankParams) {
	b.Helper()
	gen := &workload.PowerLawGraph{Seed: 9, Nodes: 2000, Edges: 100_000}
	ix, err := chunk.Layout("b1g", 100_000, workload.EdgeUnitSize, 40000, 4000)
	if err != nil {
		b.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	if err := workload.Build(ix, gen, src); err != nil {
		b.Fatal(err)
	}
	return ix, src, apps.PageRankParams{Nodes: 2000, Damping: 0.85}
}

func BenchmarkFig1_PageRank_GeneralizedReduction(b *testing.B) {
	ix, src, p := fig1Graph(b)
	r, err := apps.NewPageRankReducer(p)
	if err != nil {
		b.Fatal(err)
	}
	benchGR(b, r, ix, src)
}

func BenchmarkFig1_PageRank_MapReduce(b *testing.B) {
	ix, src, p := fig1Graph(b)
	job, err := apps.PageRankMRJob(p, false)
	if err != nil {
		b.Fatal(err)
	}
	benchMR(b, job, ix, src)
}

func BenchmarkFig1_PageRank_MRCombine(b *testing.B) {
	ix, src, p := fig1Graph(b)
	job, err := apps.PageRankMRJob(p, true)
	if err != nil {
		b.Fatal(err)
	}
	benchMR(b, job, ix, src)
}

// ---------------------------------------------------------------- Figure 3

// benchFig3 reruns the five environments each iteration and reports the
// paper's metrics for the app.
func benchFig3(b *testing.B, app experiments.App) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig3(app)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Baseline().Sim.Total.Seconds(), "envlocal_sim_s")
	b.ReportMetric(100*res.Slowdown(experiments.Env5050), "slow5050_pct")
	b.ReportMetric(100*res.Slowdown(experiments.Env3367), "slow3367_pct")
	b.ReportMetric(100*res.Slowdown(experiments.Env1783), "slow1783_pct")
}

func BenchmarkFig3_KNN(b *testing.B)      { benchFig3(b, experiments.KNN) }
func BenchmarkFig3_KMeans(b *testing.B)   { benchFig3(b, experiments.KMeans) }
func BenchmarkFig3_PageRank(b *testing.B) { benchFig3(b, experiments.PageRank) }

// ----------------------------------------------------- Observability overhead

// benchFig3Obs reruns the Figure-3 sweep with an Obs bundle attached.
func benchFig3Obs(b *testing.B, trace bool) {
	for i := 0; i < b.N; i++ {
		// Fresh bundle per iteration so an enabled tracer doesn't accumulate
		// events across iterations.
		o := obs.New(nil)
		if trace {
			o.Tracer.Enable()
		}
		for _, env := range experiments.Envs {
			if _, err := hybridsim.Run(experiments.Config(experiments.KNN, env,
				experiments.SimOptions{Obs: o})); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3_KNN_ObsDisabled is the tentpole's overhead guard: the full
// Figure-3 sweep with metrics attached and the tracer DISABLED must stay
// within 2% of BenchmarkFig3_KNN (which runs with no Obs at all). Compare:
//
//	go test -run=NONE -bench 'Fig3_KNN$|Fig3_KNN_ObsDisabled' -benchtime 5x .
func BenchmarkFig3_KNN_ObsDisabled(b *testing.B) { benchFig3Obs(b, false) }

// BenchmarkFig3_KNN_ObsTracing measures the fully-enabled path (per-job
// event recording) for comparison; this one is allowed to cost more.
func BenchmarkFig3_KNN_ObsTracing(b *testing.B) { benchFig3Obs(b, true) }

// ----------------------------------------------------------------- Table I

func BenchmarkTable1_JobAssignment(b *testing.B) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig3(experiments.KNN)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, env := range experiments.HybridEnvs {
		cell := res.Cell(env)
		stolen := 0
		for _, c := range cell.Sim.Clusters {
			stolen += c.Jobs.Stolen
		}
		b.ReportMetric(float64(stolen), fmt.Sprintf("stolen_%s", short(env)))
	}
}

// ---------------------------------------------------------------- Table II

func BenchmarkTable2_Slowdowns(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(experiments.KNN)
		if err != nil {
			b.Fatal(err)
		}
		rows = res.Table2()
	}
	for _, row := range rows {
		b.ReportMetric(row.GlobalReduction.Seconds(), "globalred_"+short(row.Env)+"_s")
		b.ReportMetric(row.IdleTime.Seconds(), "idle_"+short(row.Env)+"_s")
	}
}

func short(e experiments.Env) string {
	switch e {
	case experiments.Env5050:
		return "5050"
	case experiments.Env3367:
		return "3367"
	case experiments.Env1783:
		return "1783"
	}
	return string(e)
}

// ---------------------------------------------------------------- Figure 4

func benchFig4(b *testing.B, app experiments.App) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig4(app)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, e := range res.Efficiency() {
		m := experiments.ScalePoints[i+1]
		b.ReportMetric(100*e, fmt.Sprintf("eff_%dx%d_pct", m, m))
	}
}

func BenchmarkFig4_KNN(b *testing.B)      { benchFig4(b, experiments.KNN) }
func BenchmarkFig4_KMeans(b *testing.B)   { benchFig4(b, experiments.KMeans) }
func BenchmarkFig4_PageRank(b *testing.B) { benchFig4(b, experiments.PageRank) }

// ---------------------------------------------------------------- Headline

func BenchmarkHeadline(b *testing.B) {
	var h *experiments.Headline
	for i := 0; i < b.N; i++ {
		var err error
		h, _, _, err = experiments.RunHeadline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.AvgSlowdownPct, "avg_slowdown_pct")  // paper: 15.55
	b.ReportMetric(h.AvgEfficiencyPct, "avg_scaling_pct") // paper: 81
}

// --------------------------------------------------------------- Ablations

func benchSim(b *testing.B, cfg hybridsim.Config) *hybridsim.Result {
	b.Helper()
	var res *hybridsim.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hybridsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Total.Seconds(), "sim_s")
	b.ReportMetric(float64(res.Seeks), "seeks")
	return res
}

func BenchmarkAblation_ConsecutiveJobs(b *testing.B) {
	benchSim(b, experiments.Config(experiments.KNN, experiments.EnvLocal, experiments.SimOptions{}))
}

func BenchmarkAblation_ScatteredJobs(b *testing.B) {
	benchSim(b, experiments.Config(experiments.KNN, experiments.EnvLocal,
		experiments.SimOptions{Pool: jobs.Options{ScatterGroups: true}}))
}

func BenchmarkAblation_StealMinContention(b *testing.B) {
	benchSim(b, experiments.Config(experiments.KNN, experiments.Env1783, experiments.SimOptions{}))
}

func BenchmarkAblation_StealRoundRobin(b *testing.B) {
	benchSim(b, experiments.Config(experiments.KNN, experiments.Env1783,
		experiments.SimOptions{Pool: jobs.Options{Steal: jobs.StealRoundRobin}}))
}

func BenchmarkAblation_RetrievalThreads_Full(b *testing.B) {
	benchSim(b, experiments.Config(experiments.KNN, experiments.EnvCloud, experiments.SimOptions{}))
}

func BenchmarkAblation_RetrievalThreads_Quarter(b *testing.B) {
	benchSim(b, experiments.Config(experiments.KNN, experiments.EnvCloud,
		experiments.SimOptions{RetrievalThreadsPerCore: 0.25}))
}

// BenchmarkAblation_UnitGrouping measures the cache-aware unit-group
// batching on the real engine: tiny groups (per-unit dispatch overhead)
// vs the default cache-sized groups vs whole-chunk groups.
func benchUnitGrouping(b *testing.B, groupBytes int) {
	ix, src, _, kmP := fig1Points(b, 50_000, 8)
	r, err := apps.NewKMeansReducer(kmP)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.EngineConfig{
			Reducer: r, Workers: 2, UnitSize: ix.UnitSize, GroupBytes: groupBytes,
		}, ix, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_UnitGrouping_Tiny(b *testing.B)  { benchUnitGrouping(b, 64) }
func BenchmarkAblation_UnitGrouping_Cache(b *testing.B) { benchUnitGrouping(b, 256<<10) }
func BenchmarkAblation_UnitGrouping_Chunk(b *testing.B) { benchUnitGrouping(b, 1<<30) }

// BenchmarkAblation_IntermediateMemory contrasts GR's zero intermediate
// state with MR's buffered pairs on the same computation (Figure 1's
// memory argument, as a bench).
func BenchmarkAblation_IntermediateMemory_GR(b *testing.B) {
	ix, src, _, kmP := fig1Points(b, 50_000, 8)
	r, err := apps.NewKMeansReducer(kmP)
	if err != nil {
		b.Fatal(err)
	}
	benchGR(b, r, ix, src)
	b.ReportMetric(0, "peak_pairs")
}

func BenchmarkAblation_IntermediateMemory_MR(b *testing.B) {
	ix, src, _, kmP := fig1Points(b, 50_000, 8)
	job, err := apps.KMeansMRJob(kmP, false)
	if err != nil {
		b.Fatal(err)
	}
	benchMR(b, job, ix, src)
}

// TestObsOverheadGate is the automated half of `make bench-obs`: it runs
// the Figure-3 KNN sweep bare and with a disabled-tracer Obs attached and
// fails when the disabled-observability overhead exceeds 2%. The asserted
// quantities are heap allocations (count and bytes) — deterministic, and
// the only mechanism by which the nil-safe fast path could grow a real
// cost — because shared CI runners jitter wall-clock far beyond the
// budget itself (we observed ±50% on loaded machines); elapsed time is
// measured and logged for humans but never asserted. Opt-in via
// BENCH_OBS_GATE=1 so the default unit run stays timing-free.
func TestObsOverheadGate(t *testing.T) {
	if os.Getenv("BENCH_OBS_GATE") == "" {
		t.Skip("set BENCH_OBS_GATE=1 to run the observability overhead gate")
	}
	sweep := func(o *obs.Obs) {
		for _, env := range experiments.Envs {
			if _, err := hybridsim.Run(experiments.Config(experiments.KNN, env,
				experiments.SimOptions{Obs: o})); err != nil {
				t.Fatal(err)
			}
		}
	}
	const rounds = 10
	measure := func(mk func() *obs.Obs) (allocs, bytes uint64, elapsed time.Duration) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < rounds; i++ {
			sweep(mk())
		}
		elapsed = time.Since(start)
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, elapsed
	}
	sweep(nil) // warm-up
	bareN, bareB, bareT := measure(func() *obs.Obs { return nil })
	obsN, obsB, obsT := measure(func() *obs.Obs { return obs.New(nil) }) // metrics on, tracer off

	pct := func(with, without uint64) float64 {
		return 100 * (float64(with) - float64(without)) / float64(without)
	}
	t.Logf("allocs %d → %d (%+.2f%%), bytes %d → %d (%+.2f%%), time %v → %v (%+.2f%%)",
		bareN, obsN, pct(obsN, bareN), bareB, obsB, pct(obsB, bareB),
		bareT, obsT, pct(uint64(obsT), uint64(bareT)))
	if d := pct(obsN, bareN); d > 2 {
		t.Errorf("disabled-observability alloc-count overhead %.2f%% exceeds the 2%% budget", d)
	}
	if d := pct(obsB, bareB); d > 2 {
		t.Errorf("disabled-observability alloc-bytes overhead %.2f%% exceeds the 2%% budget", d)
	}

	// Stage-cache metrics leg: the cache pre-resolves its counters at
	// construction, so steady-state hits with a registry attached must cost
	// the same heap allocations as with metrics disabled (nil registry).
	ix, err := chunk.Layout("obs-cache", 4096, 16, 1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	src := chunk.NewMemSource(ix)
	for _, f := range ix.Files {
		if err := src.WriteFile(f.Name, make([]byte, f.Size)); err != nil {
			t.Fatal(err)
		}
	}
	refs := ix.AllRefs()
	cacheSweep := func(wrapped chunk.Source) {
		for _, ref := range refs {
			data, err := wrapped.ReadChunk(ref)
			if err != nil {
				t.Fatal(err)
			}
			bufpool.Put(data)
		}
	}
	measureCache := func(reg *obs.Registry) (allocs uint64) {
		c := stagecache.New(stagecache.Config{CapacityBytes: ix.TotalBytes() * 2}, reg)
		defer c.Close()
		wrapped := c.Wrap(1, src)
		cacheSweep(wrapped) // populate the memory tier
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < rounds; i++ {
			cacheSweep(wrapped)
		}
		runtime.ReadMemStats(&after)
		if reg != nil {
			if snap := reg.Snapshot(); snap["stagecache_hits_total"] == 0 {
				t.Error("registry recorded no stagecache hits — metrics not wired")
			}
		}
		return after.Mallocs - before.Mallocs
	}
	cacheBareN := measureCache(nil)
	cacheRegN := measureCache(obs.NewRegistry())
	t.Logf("stagecache hit allocs %d → %d (%+.2f%%)", cacheBareN, cacheRegN, pct(cacheRegN, cacheBareN))
	if d := pct(cacheRegN, cacheBareN); d > 2 {
		t.Errorf("stagecache metrics alloc-count overhead %.2f%% exceeds the 2%% budget", d)
	}
}

// TestElasticOverheadGate is the automated half of `make bench-elastic`: the
// elasticity-must-be-free-when-off promise. It runs the Figure-3 KNN workload
// through the multi-query engine twice — once with no elastic hook at all and
// once with the hook attached but inert (a controller that never scales, so
// only the engine-side plumbing runs: the virtual-clock tick and the per-site
// remaining-bytes snapshot handed to Decide) — and fails when the disabled
// controller costs more than 2% extra heap allocations. As with
// TestObsOverheadGate, allocations are the asserted quantity because they are
// deterministic; wall-clock is logged for humans but never asserted. Opt-in
// via BENCH_ELASTIC_GATE=1.
func TestElasticOverheadGate(t *testing.T) {
	if os.Getenv("BENCH_ELASTIC_GATE") == "" {
		t.Skip("set BENCH_ELASTIC_GATE=1 to run the elastic overhead gate")
	}
	sweep := func(hook bool) {
		for _, env := range experiments.Envs {
			cfg := experiments.Config(experiments.KNN, env, experiments.SimOptions{})
			mc := hybridsim.MultiConfig{
				Topology: cfg.Topology, Seed: cfg.Seed,
				Queries: []hybridsim.MultiQuery{{Name: "knn", App: cfg.App,
					Index: cfg.Index, Placement: cfg.Placement, PoolOpts: cfg.PoolOpts}},
			}
			if hook {
				mc.Elastic = &hybridsim.ElasticSim{Interval: 5 * time.Second,
					Decide: func(time.Duration, map[int]int64, []int) hybridsim.ElasticDecision {
						return hybridsim.ElasticDecision{}
					}}
			}
			if _, err := hybridsim.RunMulti(mc); err != nil {
				t.Fatal(err)
			}
		}
	}
	const rounds = 10
	measure := func(hook bool) (allocs, bytes uint64, elapsed time.Duration) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < rounds; i++ {
			sweep(hook)
		}
		elapsed = time.Since(start)
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, elapsed
	}
	sweep(false) // warm-up
	offN, offB, offT := measure(false)
	onN, onB, onT := measure(true)

	pct := func(with, without uint64) float64 {
		return 100 * (float64(with) - float64(without)) / float64(without)
	}
	t.Logf("allocs %d → %d (%+.2f%%), bytes %d → %d (%+.2f%%), time %v → %v (%+.2f%%)",
		offN, onN, pct(onN, offN), offB, onB, pct(onB, offB),
		offT, onT, pct(uint64(onT), uint64(offT)))
	if d := pct(onN, offN); d > 2 {
		t.Errorf("disabled-controller alloc-count overhead %.2f%% exceeds the 2%% budget", d)
	}
	if d := pct(onB, offB); d > 2 {
		t.Errorf("disabled-controller alloc-bytes overhead %.2f%% exceeds the 2%% budget", d)
	}
}
