package repro

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEndToEndDaemons deploys the real binaries — object store, data
// generator, head node and two cluster workers — as separate OS processes
// on loopback, runs a kNN job across a 1/3-2/3 data split, and checks the
// reported job accounting. This is the full production path: every byte
// crosses real sockets between real processes.
func TestEndToEndDaemons(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	s3d := build("s3d")
	datagen := build("datagen")
	headnode := build("headnode")
	workernode := build("workernode")

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	s3Addr := freePort()
	headAddr := freePort()
	dataDir := filepath.Join(t.TempDir(), "data")

	// 1. Object store daemon.
	s3Cmd := exec.Command(s3d, "-listen", s3Addr)
	var s3Log bytes.Buffer
	s3Cmd.Stdout, s3Cmd.Stderr = &s3Log, &s3Log
	if err := s3Cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = s3Cmd.Process.Kill()
		_, _ = s3Cmd.Process.Wait()
	}()
	waitForPort(t, s3Addr)

	// 2. Dataset: 6 files on disk (the "storage node"); the SAME layout is
	// also uploaded to the store so remote jobs resolve (each site serves
	// the files placed there).
	const units = "120000"
	runCmd(t, datagen, "-kind", "points", "-units", units, "-dim", "4",
		"-file-units", "20000", "-chunk-units", "4000", "-out", dataDir)
	runCmd(t, datagen, "-kind", "points", "-units", units, "-dim", "4",
		"-file-units", "20000", "-chunk-units", "4000", "-store", s3Addr)

	// 3. Head node: 2 of 6 files local (site 0), rest in the store.
	headCmd := exec.Command(headnode,
		"-listen", headAddr,
		"-index", filepath.Join(dataDir, "index.grix"),
		"-local-files", "2", "-clusters", "2",
		"-app", "knn", "-knn-k", "5", "-dim", "4", "-query", "0.5,0.5,0.5,0.5")
	var headLog bytes.Buffer
	headCmd.Stdout, headCmd.Stderr = &headLog, &headLog
	if err := headCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = headCmd.Process.Kill()
		_, _ = headCmd.Process.Wait()
	}()
	waitForPort(t, headAddr)

	// 4. Two workers.
	worker := func(site int, name string, log *bytes.Buffer) *exec.Cmd {
		args := []string{"-head", headAddr, "-site", fmt.Sprint(site), "-name", name,
			"-cores", "2", "-retrieval", "2", "-s3", s3Addr}
		if site == 0 {
			args = append(args, "-data", dataDir)
		}
		cmd := exec.Command(workernode, args...)
		cmd.Stdout, cmd.Stderr = log, log
		return cmd
	}
	var localLog, cloudLog bytes.Buffer
	localCmd := worker(0, "local", &localLog)
	cloudCmd := worker(1, "cloud", &cloudLog)
	if err := localCmd.Start(); err != nil {
		t.Fatal(err)
	}
	if err := cloudCmd.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, cmd := range []*exec.Cmd{localCmd, cloudCmd, headCmd} {
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			errs[i] = cmd.Wait()
		}(i, cmd)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatalf("deployment did not finish\nhead: %s\nlocal: %s\ncloud: %s",
			headLog.String(), localLog.String(), cloudLog.String())
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v\nhead: %s\nlocal: %s\ncloud: %s",
				i, err, headLog.String(), localLog.String(), cloudLog.String())
		}
	}
	head := headLog.String()
	if !strings.Contains(head, "run complete") {
		t.Errorf("head output missing completion:\n%s", head)
	}
	for _, pair := range []struct{ name, log string }{
		{"local", localLog.String()}, {"cloud", cloudLog.String()},
	} {
		if !strings.Contains(pair.log, "done:") {
			t.Errorf("%s worker output missing report:\n%s", pair.name, pair.log)
		}
	}
	// 30 chunks total: both clusters' job counts appear in the head report.
	if !strings.Contains(head, "jobs local=") {
		t.Errorf("head report missing job accounting:\n%s", head)
	}
}

func runCmd(t *testing.T, name string, args ...string) {
	t.Helper()
	cmd := exec.Command(name, args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
}

func waitForPort(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}
