package repro

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/experiments"
)

// PR 9's multi-query arbiter benchmark harness. `make bench-elastic-multi`
// runs TestEmitBenchElasticMulti with BENCH_ELASTIC_MULTI_OUT set, which
// writes BENCH_9.json and asserts the PR's acceptance bars on the standard
// mixed-policy 3-query workload (a double-weight tight-deadline query, a
// budget-capped lax query, and an unpolicied rideshare query sharing one
// arbiter-sized burst fleet under the injected mid-run slowdown):
//
//   - every feasible per-query deadline is met and the budgeted query's
//     attributed spend stays within its cap;
//   - arbiter-vs-simulator cost agreement: the arbiter's own per-episode,
//     quantum-billed instance accounting matches an independent repricing of
//     the simulator's realized burst-worker lifetimes to 1e-9;
//   - deterministic rerun: a second run renders byte-identically (virtual
//     clock, fixed seed, pure-policy arbiter).

// TestEmitBenchElasticMulti runs the mixed-policy arbiter benchmarks and
// writes BENCH_9.json. No-op unless BENCH_ELASTIC_MULTI_OUT names the output
// file, so plain `go test ./...` stays fast.
func TestEmitBenchElasticMulti(t *testing.T) {
	out := os.Getenv("BENCH_ELASTIC_MULTI_OUT")
	if out == "" {
		t.Skip("BENCH_ELASTIC_MULTI_OUT not set; run via make bench-elastic-multi")
	}
	pricing := costmodel.DefaultPricingCurrent()
	queries := experiments.DefaultMultiPolicyQueries()
	p, err := experiments.RunElasticMultiPoint(experiments.KMeans, pricing, queries)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", experiments.FormatElasticMulti(&p))

	// Policy gates: the shared fleet satisfied every query's own policy.
	if p.ScaleUps == 0 {
		t.Error("arbiter never scaled up — slowdown not biting")
	}
	for _, q := range p.Queries {
		if !q.MetDeadline {
			t.Errorf("query %s missed its %v deadline (finish %.1fs)",
				q.Name, q.Policy.Deadline, q.Finish.Seconds())
		}
		if q.Policy != nil && q.Policy.Budget > 0 && q.AttributedCost > q.Policy.Budget {
			t.Errorf("query %s attributed $%.4f exceeds its $%.2f budget",
				q.Name, q.AttributedCost, q.Policy.Budget)
		}
	}

	// Cost-agreement gate: two independent bookkeepers, one bill.
	realized := experiments.RealizedInstanceCost(pricing, p.Clusters, p.Makespan)
	costDelta := math.Abs(realized - p.Cost.Instances)
	if costDelta > 1e-9 {
		t.Errorf("arbiter billed $%.6f instances, realized lifetimes price to $%.6f",
			p.Cost.Instances, realized)
	}

	// Deterministic-rerun gate: byte-identical renderings.
	p2, err := experiments.RunElasticMultiPoint(experiments.KMeans, pricing, queries)
	if err != nil {
		t.Fatal(err)
	}
	deterministic := experiments.FormatElasticMulti(&p) == experiments.FormatElasticMulti(&p2) &&
		experiments.ElasticMultiCSV(&p) == experiments.ElasticMultiCSV(&p2)
	if !deterministic {
		t.Errorf("mixed-policy run renders differently across reruns:\n--- first ---\n%s\n--- second ---\n%s",
			experiments.FormatElasticMulti(&p), experiments.FormatElasticMulti(&p2))
	}

	var outcomes []map[string]any
	for _, q := range p.Queries {
		o := map[string]any{
			"query":           q.Name,
			"weight":          q.Weight,
			"finish_s":        q.Finish.Seconds(),
			"met_deadline":    q.MetDeadline,
			"attributed_cost": q.AttributedCost,
			"granted":         q.Granted,
		}
		if q.Policy != nil {
			o["deadline_s"] = q.Policy.Deadline.Seconds()
			o["budget"] = q.Policy.Budget
		}
		outcomes = append(outcomes, o)
	}
	report := map[string]any{
		"bench": "elastic-multi",
		"pr":    9,
		"fleet": map[string]any{
			"makespan_s":    p.Makespan.Seconds(),
			"peak_workers":  p.PeakWorkers,
			"scale_ups":     p.ScaleUps,
			"scale_downs":   p.ScaleDowns,
			"instance_cost": p.Cost.Instances,
			"total_cost":    p.Cost.Total(),
		},
		"queries": outcomes,
		"gates": map[string]any{
			"cost_agreement_delta": costDelta,
			"deterministic_rerun":  deterministic,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
